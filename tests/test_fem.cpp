// Tests for the mini-MFEM module: basis machinery, mesh indexing, operator
// correctness (partial vs full assembly), LOR spectral equivalence, and the
// coupled nonlinear diffusion driver.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/rng.hpp"
#include "fem/fem.hpp"
#include "la/la.hpp"

namespace {

using namespace coe;

TEST(Basis, GaussLegendreIntegratesPolynomialsExactly) {
  for (std::size_t n = 1; n <= 8; ++n) {
    auto q = fem::gauss_legendre(n);
    // Exact for degree 2n-1: check x^k for k = 0..2n-1.
    for (std::size_t k = 0; k < 2 * n; ++k) {
      double integral = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        integral += q.weights[i] * std::pow(q.points[i], double(k));
      }
      const double exact = (k % 2 == 0) ? 2.0 / double(k + 1) : 0.0;
      EXPECT_NEAR(integral, exact, 1e-12) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Basis, GllNodesSymmetricAndOrdered) {
  for (std::size_t p = 1; p <= 8; ++p) {
    auto x = fem::gll_nodes(p);
    ASSERT_EQ(x.size(), p + 1);
    EXPECT_DOUBLE_EQ(x.front(), -1.0);
    EXPECT_DOUBLE_EQ(x.back(), 1.0);
    for (std::size_t i = 1; i < x.size(); ++i) EXPECT_GT(x[i], x[i - 1]);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(x[i], -x[p - i], 1e-13);
    }
  }
}

TEST(Basis, LagrangeIsInterpolatory) {
  auto nodes = fem::gll_nodes(4);
  auto tab = fem::tabulate_lagrange(nodes, nodes);
  for (std::size_t q = 0; q < nodes.size(); ++q) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_NEAR(tab.b(q, i), q == i ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Basis, PartitionOfUnityAndDerivativeSumZero) {
  auto e = fem::make_element(5);
  for (std::size_t q = 0; q < e.quad.points.size(); ++q) {
    double sum_b = 0.0, sum_g = 0.0;
    for (std::size_t i = 0; i <= 5; ++i) {
      sum_b += e.tab.b(q, i);
      sum_g += e.tab.g(q, i);
    }
    EXPECT_NEAR(sum_b, 1.0, 1e-12);
    EXPECT_NEAR(sum_g, 0.0, 1e-10);
  }
}

TEST(Mesh, DofCountsAndBoundary) {
  fem::TensorMesh2D mesh(4, 3, 2);
  EXPECT_EQ(mesh.ndof_x(), 9u);
  EXPECT_EQ(mesh.ndof_y(), 7u);
  EXPECT_EQ(mesh.num_dofs(), 63u);
  // Boundary dof count: perimeter of the 9x7 lattice.
  EXPECT_EQ(mesh.boundary_dofs().size(), 2u * 9 + 2u * 7 - 4);
  // Shared dof between adjacent elements.
  EXPECT_EQ(mesh.elem_dof(0, 0, 2, 0), mesh.elem_dof(1, 0, 0, 0));
}

TEST(Mesh, CoordinatesSpanUnitSquare) {
  fem::TensorMesh2D mesh(3, 3, 4);
  EXPECT_DOUBLE_EQ(mesh.dof_x(0), 0.0);
  EXPECT_DOUBLE_EQ(mesh.dof_x(mesh.ndof_x() - 1), 1.0);
  for (std::size_t i = 1; i < mesh.ndof_x(); ++i) {
    EXPECT_GT(mesh.dof_x(i), mesh.dof_x(i - 1));
  }
}

class AssemblyEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AssemblyEquivalence, PartialMatchesFull) {
  const auto [nx, p] = GetParam();
  fem::TensorMesh2D mesh(nx, nx, p);
  fem::EllipticOperator pa(mesh, fem::Assembly::Partial, 0.3, 1.7);
  fem::EllipticOperator fa(mesh, fem::Assembly::Full, 0.3, 1.7);
  auto kappa = [](double x, double y) { return 1.0 + x + 0.5 * y * y; };
  pa.set_kappa(kappa);
  fa.set_kappa(kappa);

  core::Rng rng(5);
  std::vector<double> x(mesh.num_dofs()), y1(mesh.num_dofs()),
      y2(mesh.num_dofs());
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  auto ctx = core::make_seq();
  pa.apply(ctx, x, y1);
  fa.apply(ctx, x, y2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-10) << "dof " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MeshOrder, AssemblyEquivalence,
    ::testing::Values(std::make_tuple(3, 1), std::make_tuple(3, 2),
                      std::make_tuple(2, 4), std::make_tuple(4, 3),
                      std::make_tuple(2, 6)));

TEST(Elliptic, ThreadsBackendMatchesSeq) {
  fem::TensorMesh2D mesh(5, 5, 3);
  fem::EllipticOperator pa(mesh, fem::Assembly::Partial, 1.0, 1.0);
  core::Rng rng(6);
  std::vector<double> x(mesh.num_dofs()), y1(mesh.num_dofs()),
      y2(mesh.num_dofs());
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  auto seq = core::make_seq();
  auto thr = core::make_threads();
  pa.apply(seq, x, y1);
  pa.apply(thr, x, y2);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Elliptic, MassMatrixIntegratesConstants) {
  // For u = 1: (M u)_i sums row i; total = integral of 1 over the domain.
  fem::TensorMesh2D mesh(4, 4, 3);
  fem::EllipticOperator mass(mesh, fem::Assembly::Partial, 1.0, 0.0);
  std::vector<double> ones(mesh.num_dofs(), 1.0), y(mesh.num_dofs());
  auto ctx = core::make_seq();
  mass.apply(ctx, ones, y);
  double total = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (!mesh.is_boundary(i)) total += y[i];
  }
  // Interior rows of M*1 sum to 1 - (boundary row contributions); instead
  // check the full bilinear form 1' M 1 by including boundary rows, which
  // apply() overwrote with x[b] = 1 each; subtract those.
  double full = std::accumulate(y.begin(), y.end(), 0.0);
  full -= static_cast<double>(mesh.boundary_dofs().size());
  // full now misses the true boundary row sums; use the assembled matrix
  // without Dirichlet to verify instead on a pure-Neumann style check:
  // sum of all element mass matrices' entries = area = 1.
  (void)total;
  fem::EllipticOperator fa(mesh, fem::Assembly::Full, 1.0, 0.0);
  // Sum over interior rows/cols only is < 1; so verify with PA on the
  // interior-only quadratic form: 1'M1 over interior block.
  std::vector<double> xin(mesh.num_dofs(), 0.0);
  for (std::size_t i = 0; i < xin.size(); ++i) {
    xin[i] = mesh.is_boundary(i) ? 0.0 : 1.0;
  }
  std::vector<double> yin(mesh.num_dofs());
  mass.apply(ctx, xin, yin);
  double quad_form = 0.0;
  for (std::size_t i = 0; i < yin.size(); ++i) {
    if (!mesh.is_boundary(i)) quad_form += yin[i];
  }
  // Interior bump integral: strictly between 0 and the domain area.
  EXPECT_GT(quad_form, 0.3);
  EXPECT_LT(quad_form, 1.0);
}

TEST(Elliptic, StiffnessAnnihilatesConstants) {
  // grad(const) = 0: rows whose stencil does not touch the (column-
  // eliminated) boundary must vanish on a constant field.
  const std::size_t nx = 4, p = 4;
  fem::TensorMesh2D mesh(nx, nx, p);
  fem::EllipticOperator stiff(mesh, fem::Assembly::Partial, 0.0, 1.0);
  std::vector<double> ones(mesh.num_dofs(), 1.0), y(mesh.num_dofs());
  auto ctx = core::make_seq();
  stiff.apply(ctx, ones, y);
  std::size_t checked = 0;
  for (std::size_t ix = p + 1; ix < (nx - 1) * p; ++ix) {
    for (std::size_t iy = p + 1; iy < (nx - 1) * p; ++iy) {
      EXPECT_NEAR(y[mesh.dof(ix, iy)], 0.0, 1e-10);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Elliptic, GalerkinSolveConvergesWithOrder) {
  // Solve -lap u = f with u* = sin(pi x) sin(pi y): higher order on the
  // same mesh must reduce the nodal error dramatically.
  auto nodal_error = [&](std::size_t p) {
    fem::TensorMesh2D mesh(4, 4, p);
    fem::EllipticOperator op(mesh, fem::Assembly::Full, 0.0, 1.0);
    fem::EllipticOperator mass(mesh, fem::Assembly::Full, 1.0, 0.0);
    const std::size_t n = mesh.num_dofs();
    // f = 2 pi^2 sin(pi x) sin(pi y): build load vector b = M f_nodal
    // (good enough at these orders).
    std::vector<double> fn(n), b(n), u(n, 0.0);
    for (std::size_t ix = 0; ix < mesh.ndof_x(); ++ix) {
      for (std::size_t iy = 0; iy < mesh.ndof_y(); ++iy) {
        fn[mesh.dof(ix, iy)] = 2.0 * M_PI * M_PI *
                               std::sin(M_PI * mesh.dof_x(ix)) *
                               std::sin(M_PI * mesh.dof_y(iy));
      }
    }
    auto ctx = core::make_seq();
    mass.apply(ctx, fn, b);
    for (std::size_t bd : mesh.boundary_dofs()) b[bd] = 0.0;
    la::JacobiPreconditioner prec(op.assembled_matrix());
    la::cg(ctx, op, prec, b, u, {4000, 1e-12, 0.0});
    double err = 0.0;
    for (std::size_t ix = 0; ix < mesh.ndof_x(); ++ix) {
      for (std::size_t iy = 0; iy < mesh.ndof_y(); ++iy) {
        const double exact =
            std::sin(M_PI * mesh.dof_x(ix)) * std::sin(M_PI * mesh.dof_y(iy));
        err = std::max(err, std::abs(u[mesh.dof(ix, iy)] - exact));
      }
    }
    return err;
  };
  const double e1 = nodal_error(1);
  const double e3 = nodal_error(3);
  EXPECT_LT(e3, e1 / 50.0);
}

TEST(Elliptic, DiagonalMatchesAssembled) {
  fem::TensorMesh2D mesh(3, 3, 3);
  fem::EllipticOperator op(mesh, fem::Assembly::Full, 0.5, 2.0);
  op.set_kappa([](double x, double y) { return 1.0 + x * y; });
  auto diag_free = op.assemble_diagonal();
  auto diag_csr = op.assembled_matrix().diagonal();
  for (std::size_t i = 0; i < diag_free.size(); ++i) {
    if (mesh.is_boundary(i)) {
      EXPECT_DOUBLE_EQ(diag_csr[i], 1.0);
    } else {
      EXPECT_NEAR(diag_free[i], diag_csr[i], 1e-10);
    }
  }
}

TEST(Lor, SpectrallyEquivalentPreconditioner) {
  // CG on the high-order operator preconditioned by AMG-on-LOR must
  // converge in O(10) iterations regardless of order.
  for (std::size_t p : {2, 4}) {
    fem::TensorMesh2D mesh(6, 6, p);
    fem::EllipticOperator op(mesh, fem::Assembly::Partial, 1.0, 1.0);
    auto lor = op.assemble_lor();
    EXPECT_EQ(lor.rows(), mesh.num_dofs());
    amg::BoomerAmg prec(lor, {});
    std::vector<double> b(mesh.num_dofs(), 0.0), x(mesh.num_dofs(), 0.0);
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = mesh.is_boundary(i) ? 0.0 : 1.0;
    }
    auto ctx = core::make_seq();
    auto res = la::cg(ctx, op, prec, b, x, {200, 1e-8, 0.0});
    ASSERT_TRUE(res.converged) << "p=" << p;
    EXPECT_LT(res.iterations, 30u) << "p=" << p;
  }
}

TEST(Lor, OrderOneLorEqualsAssembledOperator) {
  // At p = 1 the LOR mesh is the mesh itself, so the LOR matrix must equal
  // the assembled high-order matrix entry for entry (kappa constant).
  fem::TensorMesh2D mesh(5, 4, 1);
  fem::EllipticOperator op(mesh, fem::Assembly::Full, 0.7, 1.3);
  auto lor = op.assemble_lor();
  const auto& a = op.assembled_matrix();
  ASSERT_EQ(lor.rows(), a.rows());
  ASSERT_EQ(lor.nnz(), a.nnz());
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    EXPECT_EQ(lor.colind()[k], a.colind()[k]);
    EXPECT_NEAR(lor.values()[k], a.values()[k], 1e-12);
  }
}

TEST(Elliptic, PaStorageSmallerThanCsrAtHighOrder) {
  fem::TensorMesh2D mesh(6, 6, 6);
  fem::EllipticOperator pa(mesh, fem::Assembly::Partial, 1.0, 1.0);
  fem::EllipticOperator fa(mesh, fem::Assembly::Full, 1.0, 1.0);
  EXPECT_LT(pa.storage_bytes() * 5.0, fa.storage_bytes());
}

TEST(DiffusionApp, DecaysAndConserves) {
  auto ctx = core::make_seq();
  fem::DiffusionConfig cfg;
  cfg.nx = 4;
  cfg.order = 2;
  cfg.t_final = 0.005;
  auto app = std::make_unique<fem::NonlinearDiffusion>(ctx, cfg);
  const auto before = std::vector<double>(app->solution().begin(),
                                          app->solution().end());
  auto report = app->run();
  EXPECT_GT(report.ode.steps, 0u);
  EXPECT_GT(report.cg_solves, 0u);
  const auto after = app->solution();
  // Diffusion with zero boundary: max principle -> peak decays, stays >= 0.
  double max_before = 0.0, max_after = 0.0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    max_before = std::max(max_before, before[i]);
    max_after = std::max(max_after, after[i]);
    EXPECT_GT(after[i], -1e-6);
  }
  EXPECT_LT(max_after, max_before);
  EXPECT_GT(max_after, 0.1 * max_before);  // not collapsed to zero
}

TEST(Elliptic, AmgOnLorCutsCgIterationsOnStiffSystem) {
  // The stiffness-dominated regime is where the paper's teams needed AMG:
  // compare CG iteration counts with AMG-on-LOR vs plain Jacobi on the
  // high-order operator.
  fem::TensorMesh2D mesh(8, 8, 4);
  fem::EllipticOperator op(mesh, fem::Assembly::Partial, 0.0, 1.0);
  std::vector<double> b(mesh.num_dofs(), 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = mesh.is_boundary(i) ? 0.0 : 1.0;
  }
  la::SolveOptions opts{2000, 1e-8, 0.0};

  auto ctx1 = core::make_seq();
  std::vector<double> x1(mesh.num_dofs(), 0.0);
  auto diag = op.assemble_diagonal();
  struct DiagPrec final : la::Preconditioner {
    const std::vector<double>* d;
    void apply(core::ExecContext& c, std::span<const double> r,
               std::span<double> z) const override {
      const auto& dd = *d;
      c.forall(r.size(), {1.0, 24.0},
               [&](std::size_t i) { z[i] = r[i] / dd[i]; });
    }
  } jac;
  jac.d = &diag;
  auto r1 = la::cg(ctx1, op, jac, b, x1, opts);

  auto ctx2 = core::make_seq();
  std::vector<double> x2(mesh.num_dofs(), 0.0);
  amg::BoomerAmg prec(op.assemble_lor(), {});
  auto r2 = la::cg(ctx2, op, prec, b, x2, opts);

  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations * 2, r1.iterations);
  for (std::size_t i = 0; i < x1.size(); ++i) EXPECT_NEAR(x1[i], x2[i], 1e-5);
}

TEST(DiffusionApp, TimelineHasAllThreePhases) {
  auto ctx = core::make_device();
  fem::DiffusionConfig cfg;
  cfg.nx = 4;
  cfg.order = 2;
  cfg.t_final = 0.002;
  fem::NonlinearDiffusion app(ctx, cfg);
  app.run();
  bool has_form = false, has_prec = false, has_solve = false;
  for (const auto& ph : ctx.timeline().phases()) {
    has_form |= ph.name == "formulation";
    has_prec |= ph.name == "preconditioner";
    has_solve |= ph.name == "solve";
  }
  EXPECT_TRUE(has_form);
  EXPECT_TRUE(has_prec);
  EXPECT_TRUE(has_solve);
}

}  // namespace
