// Tests for the sw4lite wave-propagation module: spatial convergence,
// dispersion against the analytic standing wave, option equivalence
// (tiled/fused variants change cost, never numerics), forcing, and the
// halo-exchange model.
#include <gtest/gtest.h>

#include <cmath>

#include "stencil/wave.hpp"

namespace {

using namespace coe;

double standing_wave_error(std::size_t n, bool tiled, bool fused) {
  // u = sin(pi x) sin(pi y) sin(pi z) cos(omega t) on [0,1]^3, c = 1,
  // omega = sqrt(3) pi.
  auto ctx = core::make_seq();
  stencil::WaveOptions opts;
  opts.tiled = tiled;
  opts.fused = fused;
  stencil::WaveSolver solver(ctx, n, n, n, 1.0, 1.0, opts);
  const double dt = 0.2 * solver.stable_dt();
  auto u0 = [](double x, double y, double z) {
    return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
  };
  solver.set_initial(u0, [](double, double, double) { return 0.0; }, dt);
  const double t_end = 0.25;
  const auto steps = static_cast<std::size_t>(t_end / dt);
  for (std::size_t s = 0; s < steps; ++s) solver.step(dt);
  const double omega = std::sqrt(3.0) * M_PI;
  const double tt = solver.time();
  double err = 0.0;
  const double h = solver.h();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double exact = u0(h * double(i + 1), h * double(j + 1),
                                h * double(k + 1)) *
                             std::cos(omega * tt);
        err = std::max(err, std::abs(solver.at(i, j, k) - exact));
      }
    }
  }
  return err;
}

TEST(Wave, MatchesAnalyticStandingWave) {
  EXPECT_LT(standing_wave_error(15, false, true), 5e-3);
}

TEST(Wave, SpatialConvergence) {
  const double e1 = standing_wave_error(7, false, true);
  const double e2 = standing_wave_error(15, false, true);
  // Mixed 4th-space/2nd-time scheme at fixed dt/h ratio: expect at least
  // 2nd-order reduction, typically much better.
  EXPECT_LT(e2, e1 / 3.5);
}

TEST(Wave, TiledAndUnfusedVariantsAreBitwiseCompatible) {
  const std::size_t n = 9;
  for (bool tiled : {false, true}) {
    for (bool fused : {false, true}) {
      const double e = standing_wave_error(n, tiled, fused);
      const double ref = standing_wave_error(n, false, true);
      EXPECT_NEAR(e, ref, 1e-13) << "tiled=" << tiled << " fused=" << fused;
    }
  }
}

TEST(Wave, TilingCutsModeledBytes) {
  auto ctx = core::make_seq();
  stencil::WaveOptions naive;
  naive.tiled = false;
  stencil::WaveOptions tiled;
  tiled.tiled = true;
  stencil::WaveSolver a(ctx, 8, 8, 8, 1.0, 1.0, naive);
  stencil::WaveSolver b(ctx, 8, 8, 8, 1.0, 1.0, tiled);
  EXPECT_GT(a.bytes_per_point(), 2.0 * b.bytes_per_point());
  EXPECT_DOUBLE_EQ(a.flops_per_point(), b.flops_per_point());
}

TEST(Wave, FusionHalvesLaunchCount) {
  auto count_launches = [](bool fused) {
    auto ctx = core::make_device();
    stencil::WaveOptions opts;
    opts.fused = fused;
    stencil::WaveSolver solver(ctx, 6, 6, 6, 1.0, 1.0, opts);
    const double dt = solver.stable_dt();
    const auto before = ctx.counters().launches;
    for (int s = 0; s < 10; ++s) solver.step(dt);
    return ctx.counters().launches - before;
  };
  // Fused: update + shake-map = 2/step. Unfused adds the lap kernel.
  EXPECT_EQ(count_launches(true) + 10, count_launches(false));
}

TEST(Wave, PointSourceRadiatesEnergy) {
  auto ctx = core::make_seq();
  stencil::WaveSolver solver(ctx, 17, 17, 17, 1.0, 1.0);
  stencil::PointSource src;
  src.i = src.j = src.k = 8;
  src.amplitude = 100.0;
  src.freq = 4.0;
  src.t0 = 0.25;
  solver.add_source(src);
  const double dt = solver.stable_dt();
  EXPECT_DOUBLE_EQ(solver.max_abs(), 0.0);
  while (solver.time() < 0.5) solver.step(dt);
  EXPECT_GT(solver.max_abs(), 1e-4);
  // Shake map recorded something at the surface.
  double smax = 0.0;
  for (double v : solver.shake_map()) smax = std::max(smax, v);
  EXPECT_GT(smax, 0.0);
}

TEST(Wave, HostForcingAddsTransfers) {
  auto run = [](bool on_device) {
    auto ctx = core::make_device();
    stencil::WaveOptions opts;
    opts.forcing_on_device = on_device;
    stencil::WaveSolver solver(ctx, 6, 6, 6, 1.0, 1.0, opts);
    solver.add_source({3, 3, 3, 1.0, 2.0, 0.1});
    const double dt = solver.stable_dt();
    for (int s = 0; s < 25; ++s) solver.step(dt);
    return ctx.counters().transfers;
  };
  EXPECT_EQ(run(true), 0u);
  EXPECT_EQ(run(false), 25u);
}

TEST(Wave, StableDtScalesWithResolution) {
  auto ctx = core::make_seq();
  stencil::WaveSolver coarse(ctx, 8, 8, 8, 1.0, 1.0);
  stencil::WaveSolver fine(ctx, 16, 16, 16, 1.0, 1.0);
  EXPECT_NEAR(coarse.stable_dt() / fine.stable_dt(), 17.0 / 9.0, 1e-12);
}

TEST(Halo, ExchangeTimeGrowsWithBlockSize) {
  const auto net = hsim::clusters::sierra(256);
  EXPECT_GT(stencil::halo_exchange_time(net, 512),
            stencil::halo_exchange_time(net, 128));
  // Latency floor: even a tiny halo costs six alpha terms.
  EXPECT_GE(stencil::halo_exchange_time(net, 1), 6.0 * net.alpha);
}

}  // namespace
