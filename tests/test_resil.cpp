// Tests for coe::resil: the seeded fault clock, checkpoint pricing through
// the machine model, bitwise-exact solver checkpoint round trips across
// three mini-app families, failure-aware scheduling, and the run_resilient
// recovery guarantee (faulted run == fault-free run, bitwise).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "md/simulation.hpp"
#include "ode/integrator.hpp"
#include "resil/resil.hpp"
#include "sched/scheduler.hpp"
#include "stencil/wave.hpp"

namespace {

using namespace coe;

TEST(FaultInjector, DeterministicSeededExponential) {
  resil::FaultInjector a(10.0, 42), b(10.0, 42);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double da = a.draw();
    EXPECT_DOUBLE_EQ(da, b.draw());
    sum += da;
  }
  // Mean of exponential(mtbf=10) draws concentrates near 10.
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(FaultInjector, DisabledNeverFires) {
  resil::FaultInjector f(0.0, 1);
  EXPECT_FALSE(f.enabled());
  EXPECT_FALSE(f.fire(1e300));
}

TEST(FaultInjector, FireAdvancesClock) {
  resil::FaultInjector f(5.0, 7);
  const double first = f.next();
  EXPECT_FALSE(f.fire(first * 0.5));
  EXPECT_TRUE(f.fire(first));
  EXPECT_GT(f.next(), first);
}

TEST(YoungDaly, FormulaAndMonotonicity) {
  EXPECT_DOUBLE_EQ(resil::young_daly_interval(50.0, 2.0),
                   std::sqrt(2.0 * 2.0 * 50.0));
  // Dearer checkpoints and rarer faults both stretch the interval.
  EXPECT_LT(resil::young_daly_interval(50.0, 1.0),
            resil::young_daly_interval(50.0, 4.0));
  EXPECT_LT(resil::young_daly_interval(10.0, 1.0),
            resil::young_daly_interval(1000.0, 1.0));
}

// A trivial Checkpointable for store-level tests.
struct Blob : resil::Checkpointable {
  std::vector<double> v;
  void save_state(std::vector<double>& out) const override { out = v; }
  void restore_state(const std::vector<double>& in) override { v = in; }
};

TEST(CheckpointStore, ChargesTransfersToMachineModel) {
  auto ctx = core::make_device();
  Blob b;
  b.v.assign(1000, 3.14);
  resil::CheckpointStore store;
  store.write("b", 5, b, ctx);
  EXPECT_EQ(ctx.counters().transfers, 1u);
  EXPECT_DOUBLE_EQ(ctx.counters().d2h_bytes, 8000.0);
  const double after_write = ctx.simulated_time();
  EXPECT_GT(after_write, 0.0);

  b.v.assign(1000, -1.0);
  std::size_t step = 0;
  ASSERT_TRUE(store.restore_latest("b", b, ctx, &step));
  EXPECT_EQ(step, 5u);
  EXPECT_DOUBLE_EQ(b.v[0], 3.14);
  EXPECT_DOUBLE_EQ(ctx.counters().h2d_bytes, 8000.0);
  EXPECT_GT(ctx.simulated_time(), after_write);
  EXPECT_EQ(store.stats().writes, 1u);
  EXPECT_EQ(store.stats().restores, 1u);
}

TEST(CheckpointStore, KeepsLatestTwo) {
  auto ctx = core::make_device();
  Blob b;
  resil::CheckpointStore store;
  for (std::size_t s = 1; s <= 5; ++s) {
    b.v.assign(4, static_cast<double>(s));
    store.write("b", s, b, ctx);
  }
  ASSERT_NE(store.latest("b"), nullptr);
  EXPECT_EQ(store.latest("b")->step, 5u);
  EXPECT_EQ(store.latest("missing"), nullptr);
}

TEST(Checkpoint, WaveSolverRoundTripIsBitwise) {
  auto mk = [](core::ExecContext& ctx) {
    stencil::WaveSolver w(ctx, 12, 10, 10, 1.0, 1.0, {});
    w.set_initial(
        [](double x, double y, double z) {
          return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
        },
        [](double, double, double) { return 0.0; }, w.stable_dt());
    w.add_source({6, 5, 5, 1.0, 2.0, 0.05});
    return w;
  };
  auto ctx = core::make_device();
  auto w = mk(ctx);
  const double dt = w.stable_dt();
  for (int s = 0; s < 10; ++s) w.step(dt);
  std::vector<double> ck;
  w.save_state(ck);
  for (int s = 0; s < 7; ++s) w.step(dt);
  std::vector<double> final_a;
  w.save_state(final_a);

  w.restore_state(ck);
  EXPECT_EQ(w.steps_taken(), 10u);
  for (int s = 0; s < 7; ++s) w.step(dt);
  std::vector<double> final_b;
  w.save_state(final_b);
  ASSERT_EQ(final_a.size(), final_b.size());
  for (std::size_t i = 0; i < final_a.size(); ++i) {
    EXPECT_EQ(final_a[i], final_b[i]) << "blob index " << i;
  }
}

TEST(Checkpoint, Rk4StepperMatchesBatchIntegrator) {
  struct Decay : ode::OdeRhs {
    void eval(double t, const ode::NVector& y, ode::NVector& ydot) override {
      const auto ys = y.data();
      auto ds = ydot.data();
      for (std::size_t i = 0; i < ys.size(); ++i) {
        ds[i] = -0.7 * ys[i] + 0.1 * std::sin(t);
      }
    }
  };
  auto ctx = core::make_device();
  const std::size_t n = 64;
  Decay f;

  ode::NVector ya(ctx, n, 1.0);
  ode::Rk4().integrate(f, 0.0, 1.0, 50, ya);

  ode::NVector yb(ctx, n, 1.0);
  ode::Rk4Stepper stepper(f, yb, 0.0, 1.0 / 50.0);
  for (int s = 0; s < 50; ++s) stepper.step();

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(Checkpoint, MdSimulationRoundTripIsBitwise) {
  // Langevin + Berendsen: the round trip must restore the RNG stream and
  // the barostat-scaled box, not just particle arrays.
  core::Rng init(13);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 4, 0.7, 1.0, init);
  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  md::SimConfig cfg;
  cfg.thermostat = md::Thermostat::Langevin;
  cfg.temperature = 1.2;
  cfg.barostat = md::Barostat::Berendsen;
  cfg.pressure = 1.0;
  md::Simulation<md::LennardJones> sim(gpu, cpu, std::move(p), box,
                                       md::LennardJones(1.0, 1.0, 2.5), cfg,
                                       0.4);
  for (int s = 0; s < 10; ++s) sim.step();
  std::vector<double> ck;
  sim.save_state(ck);
  for (int s = 0; s < 8; ++s) sim.step();
  std::vector<double> final_a;
  sim.save_state(final_a);

  sim.restore_state(ck);
  for (int s = 0; s < 8; ++s) sim.step();
  std::vector<double> final_b;
  sim.save_state(final_b);
  ASSERT_EQ(final_a.size(), final_b.size());
  for (std::size_t i = 0; i < final_a.size(); ++i) {
    ASSERT_EQ(final_a[i], final_b[i]) << "blob index " << i;
  }
}

TEST(RunResilient, FaultedRunMatchesFaultFreeBitwise) {
  auto build = [](core::ExecContext& ctx) {
    stencil::WaveSolver w(ctx, 10, 10, 10, 1.0, 1.0, {});
    w.set_initial(
        [](double x, double y, double z) {
          return std::sin(M_PI * x) * std::sin(2.0 * M_PI * y) *
                 std::sin(M_PI * z);
        },
        [](double, double, double) { return 0.0; }, 0.01);
    return w;
  };

  // Fault-free reference.
  auto ctx_a = core::make_device();
  auto wa = build(ctx_a);
  const std::size_t steps = 60;
  for (std::size_t s = 0; s < steps; ++s) wa.step(0.01);
  const double ref_time = ctx_a.simulated_time();

  // Faulted, checkpointed run: MTBF a few modeled step times.
  auto ctx_b = core::make_device();
  auto wb = build(ctx_b);
  resil::ResilienceConfig cfg;
  cfg.mtbf = 1e-4;
  cfg.seed = 5;
  auto rep = resil::run_resilient(
      wb, ctx_b, steps, [&](std::size_t) { wb.step(0.01); }, cfg);

  EXPECT_TRUE(rep.completed);
  EXPECT_GT(rep.faults, 0u);
  EXPECT_GT(rep.steps_replayed, 0u);
  EXPECT_GT(rep.checkpoints, 1u);
  // Recovery costs time on the modeled machine...
  EXPECT_GT(rep.total_time, ref_time);
  EXPECT_GT(rep.wasted_time, 0.0);
  // ...but the answer is exactly the fault-free one.
  std::vector<double> sa, sb;
  wa.save_state(sa);
  wb.save_state(sb);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i], sb[i]) << "blob index " << i;
  }
}

TEST(RunResilient, NoFaultsMeansNoReplay) {
  auto ctx = core::make_device();
  auto w = stencil::WaveSolver(ctx, 8, 8, 8, 1.0, 1.0, {});
  resil::ResilienceConfig cfg;  // mtbf = 0: reliable machine
  auto rep = resil::run_resilient(
      w, ctx, 20, [&](std::size_t) { w.step(0.01); }, cfg);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.faults, 0u);
  EXPECT_EQ(rep.steps_executed, 20u);
  EXPECT_EQ(rep.steps_replayed, 0u);
  EXPECT_EQ(rep.checkpoints, 1u);  // only the step-0 baseline
}

TEST(RunResilient, YoungDalyIntervalBeatsTenXEitherWay) {
  // Acceptance: the Young/Daly interval must yield lower total simulated
  // time than both a 10x shorter and a 10x longer interval. Averaged over
  // seeds to tame fault-arrival variance.
  struct Decay : ode::OdeRhs {
    void eval(double, const ode::NVector& y, ode::NVector& ydot) override {
      const auto ys = y.data();
      auto ds = ydot.data();
      for (std::size_t i = 0; i < ys.size(); ++i) ds[i] = -0.3 * ys[i];
    }
  };
  const std::size_t n = 512, steps = 3000;
  const double mtbf = 0.02;

  auto total_for = [&](double interval, std::uint64_t seed) {
    auto ctx = core::make_device();
    Decay f;
    ode::NVector y(ctx, n, 1.0);
    ode::Rk4Stepper stepper(f, y, 0.0, 1e-4);
    resil::ResilienceConfig cfg;
    cfg.mtbf = mtbf;
    cfg.checkpoint_interval = interval;
    cfg.seed = seed;
    auto rep = resil::run_resilient(
        stepper, ctx, steps, [&](std::size_t) { stepper.step(); }, cfg);
    EXPECT_TRUE(rep.completed);
    return rep.total_time;
  };

  auto probe_ctx = core::make_device();
  Decay f;
  ode::NVector y(probe_ctx, n, 1.0);
  ode::Rk4Stepper probe(f, y, 0.0, 1e-4);
  const double c = resil::modeled_checkpoint_cost(probe, probe_ctx);
  const double yd = resil::young_daly_interval(mtbf, c);

  double t_short = 0.0, t_yd = 0.0, t_long = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    t_short += total_for(yd / 10.0, seed);
    t_yd += total_for(yd, seed);
    t_long += total_for(yd * 10.0, seed);
  }
  EXPECT_LT(t_yd, t_short);
  EXPECT_LT(t_yd, t_long);
}

TEST(CheckpointStore, FsyncOrderAbortLeavesVisibleGenerationsUntouched) {
  // Regression for the fsync-order discipline: a begun-but-aborted write
  // must leave the visible generations exactly as they were, and only a
  // commit may publish the pending blob.
  auto ctx = core::make_device();
  Blob b;
  b.v.assign(16, 1.0);
  resil::CheckpointStore store;
  store.write("b", 3, b, ctx);
  const std::uint32_t crc_before = store.latest("b")->crc;

  b.v.assign(16, 2.0);
  store.begin_write("b", 7, b, ctx);
  // Pending blob is invisible: newest generation is still step 3.
  ASSERT_NE(store.latest("b"), nullptr);
  EXPECT_EQ(store.latest("b")->step, 3u);
  EXPECT_EQ(store.latest("b")->crc, crc_before);

  store.abort_write("b");  // fault mid-write
  EXPECT_EQ(store.latest("b")->step, 3u);
  EXPECT_EQ(store.latest("b")->crc, crc_before);
  EXPECT_EQ(store.stats().aborted_writes, 1u);
  EXPECT_TRUE(store.verify_all());

  // A clean two-phase write does publish.
  b.v.assign(16, 4.0);
  store.begin_write("b", 9, b, ctx);
  store.commit_write("b");
  EXPECT_EQ(store.latest("b")->step, 9u);
  EXPECT_TRUE(store.verify_all());
  // Restore serves the committed state, not the aborted one.
  Blob r;
  r.v.assign(16, 0.0);
  std::size_t step = 0;
  ASSERT_TRUE(store.restore_latest("b", r, ctx, &step));
  EXPECT_EQ(step, 9u);
  EXPECT_DOUBLE_EQ(r.v[0], 4.0);
}

TEST(RunResilient, MidWriteFaultAbortsPendingCheckpointAndStaysBitwise) {
  // Drive the fault process until a fault lands inside a checkpoint write
  // window; the driver must abort the pending generation (never exposing a
  // partial blob) and still finish bitwise-exact.
  auto build = [](core::ExecContext& ctx) {
    stencil::WaveSolver w(ctx, 8, 8, 8, 1.0, 1.0, {});
    w.set_initial(
        [](double x, double y, double z) {
          return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
        },
        [](double, double, double) { return 0.0; }, 0.01);
    return w;
  };
  auto ctx_ref = core::make_device();
  auto w_ref = build(ctx_ref);
  const std::size_t steps = 40;
  for (std::size_t s = 0; s < steps; ++s) w_ref.step(0.01);
  std::vector<double> ref;
  w_ref.save_state(ref);

  bool seen_abort = false;
  for (std::uint64_t seed = 1; seed <= 64 && !seen_abort; ++seed) {
    auto ctx = core::make_device();
    auto w = build(ctx);
    resil::ResilienceConfig cfg;
    cfg.mtbf = 1e-4;
    cfg.seed = seed;
    resil::CheckpointStore store;
    auto rep = resil::run_resilient(
        w, ctx, steps, [&](std::size_t) { w.step(0.01); }, cfg, &store);
    ASSERT_TRUE(rep.completed);
    std::vector<double> got;
    w.save_state(got);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], ref[i]) << "seed " << seed << " blob index " << i;
    }
    if (rep.checkpoint_aborts > 0) {
      seen_abort = true;
      EXPECT_EQ(store.stats().aborted_writes, rep.checkpoint_aborts);
      EXPECT_TRUE(store.verify_all());
    }
  }
  EXPECT_TRUE(seen_abort) << "no seed produced a mid-write fault";
}

TEST(RunResilient, ZeroIntervalFallsBackToYoungDaly) {
  auto ctx = core::make_device();
  auto w = stencil::WaveSolver(ctx, 8, 8, 8, 1.0, 1.0, {});
  resil::ResilienceConfig cfg;
  cfg.mtbf = 0.01;
  cfg.checkpoint_interval = 0.0;  // <= 0 selects the Young/Daly optimum
  auto rep = resil::run_resilient(
      w, ctx, 10, [&](std::size_t) { w.step(0.01); }, cfg);
  EXPECT_TRUE(rep.completed);
  EXPECT_GT(rep.checkpoint_cost, 0.0);
  EXPECT_DOUBLE_EQ(rep.interval,
                   resil::young_daly_interval(cfg.mtbf, rep.checkpoint_cost));
}

TEST(RunResilient, TinyIntervalCheckpointsEveryStepBitwise) {
  auto build = [](core::ExecContext& ctx) {
    stencil::WaveSolver w(ctx, 8, 8, 8, 1.0, 1.0, {});
    w.set_initial(
        [](double x, double y, double z) {
          return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
        },
        [](double, double, double) { return 0.0; }, 0.01);
    return w;
  };
  auto ctx_ref = core::make_device();
  auto w_ref = build(ctx_ref);
  const std::size_t steps = 20;
  for (std::size_t s = 0; s < steps; ++s) w_ref.step(0.01);
  std::vector<double> ref;
  w_ref.save_state(ref);

  auto ctx = core::make_device();
  auto w = build(ctx);
  resil::ResilienceConfig cfg;
  cfg.checkpoint_interval = 1e-300;  // denser than any step: every step
  auto rep = resil::run_resilient(
      w, ctx, steps, [&](std::size_t) { w.step(0.01); }, cfg);
  EXPECT_TRUE(rep.completed);
  // Baseline at step 0 plus one after every step except the last (the
  // driver never checkpoints state no further step will consume).
  EXPECT_EQ(rep.checkpoints, steps);
  std::vector<double> got;
  w.save_state(got);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], ref[i]) << "blob index " << i;
  }
}

TEST(RunResilient, FaultBetweenDetectionAndRollbackStaysBitwise) {
  // Detections and fail-stop faults interleave: a fault can fire during
  // the recovery a tripped detector triggered. Both recovery paths must
  // compose without losing the bitwise guarantee.
  auto build = [](core::ExecContext& ctx) {
    stencil::WaveSolver w(ctx, 8, 8, 8, 1.0, 1.0, {});
    w.set_initial(
        [](double x, double y, double z) {
          return std::sin(M_PI * x) * std::sin(2.0 * M_PI * y) *
                 std::sin(M_PI * z);
        },
        [](double, double, double) { return 0.0; }, 0.01);
    return w;
  };
  auto ctx_ref = core::make_device();
  auto w_ref = build(ctx_ref);
  const std::size_t steps = 40;
  for (std::size_t s = 0; s < steps; ++s) w_ref.step(0.01);
  std::vector<double> ref;
  w_ref.save_state(ref);

  auto ctx = core::make_device();
  auto w = build(ctx);
  resil::ResilienceConfig cfg;
  cfg.mtbf = 1e-4;  // aggressive fail-stop process
  cfg.seed = 11;
  cfg.checkpoint_interval = 1e-300;
  std::size_t calls = 0;
  cfg.verify_hook = [&](std::size_t) { return ++calls % 5 != 0; };
  auto rep = resil::run_resilient(
      w, ctx, steps, [&](std::size_t) { w.step(0.01); }, cfg);
  ASSERT_TRUE(rep.completed);
  EXPECT_GT(rep.faults, 0u);
  EXPECT_GT(rep.detections, 0u);
  EXPECT_GT(rep.rollbacks, 0u);
  std::vector<double> got;
  w.save_state(got);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], ref[i]) << "blob index " << i;
  }
}

TEST(RunResilient, FalsePositiveDetectorIsBitwiseHarmless) {
  // A detector that trips with no corruption present costs time but must
  // not change the answer: rollback restores exactly the state the run
  // already had, and replay regenerates the same trajectory.
  auto build = [](core::ExecContext& ctx) {
    stencil::WaveSolver w(ctx, 8, 8, 8, 1.0, 1.0, {});
    w.set_initial(
        [](double x, double y, double z) {
          return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
        },
        [](double, double, double) { return 0.0; }, 0.01);
    return w;
  };
  auto ctx_ref = core::make_device();
  auto w_ref = build(ctx_ref);
  const std::size_t steps = 30;
  for (std::size_t s = 0; s < steps; ++s) w_ref.step(0.01);
  std::vector<double> ref;
  w_ref.save_state(ref);

  auto ctx = core::make_device();
  auto w = build(ctx);
  resil::ResilienceConfig cfg;
  cfg.checkpoint_interval = 1e-300;
  std::size_t calls = 0;
  cfg.verify_hook = [&](std::size_t) { return ++calls % 7 != 0; };
  cfg.corruption_count = [] { return std::size_t{0}; };
  auto rep = resil::run_resilient(
      w, ctx, steps, [&](std::size_t) { w.step(0.01); }, cfg);
  ASSERT_TRUE(rep.completed);
  EXPECT_GT(rep.rollbacks, 0u);
  EXPECT_EQ(rep.corruptions_seen, 0u);
  EXPECT_EQ(rep.corruptions_contained, 0u);
  EXPECT_EQ(rep.corruptions_escaped, 0u);
  EXPECT_GT(rep.wasted_time, 0.0);
  std::vector<double> got;
  w.save_state(got);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], ref[i]) << "blob index " << i;
  }
}

TEST(SchedFailures, JobsRequeueAndAllComplete) {
  auto jobs = sched::make_workload({200, 60.0, 1.5, 0.0, 0.0, 7});
  sched::SchedulerConfig reliable{8, sched::Policy::Sjf, 0.0, 0};
  auto m0 = sched::Simulator(reliable).run(jobs);
  ASSERT_EQ(m0.completed, jobs.size());
  EXPECT_EQ(m0.gpu_failures, 0u);
  EXPECT_DOUBLE_EQ(m0.lost_gpu_time, 0.0);

  sched::SchedulerConfig flaky = reliable;
  flaky.gpu_mtbf = 2000.0;  // each GPU fails every ~33 job-lengths
  flaky.gpu_repair_time = 30.0;
  flaky.fault_seed = 3;
  auto m1 = sched::Simulator(flaky).run(jobs);
  EXPECT_EQ(m1.completed, jobs.size());  // failure-aware requeue loses no job
  EXPECT_GT(m1.gpu_failures, 0u);
  EXPECT_GT(m1.requeues, 0u);
  EXPECT_GT(m1.lost_gpu_time, 0.0);
  // Lost work + downtime stretch the schedule.
  EXPECT_GT(m1.makespan, m0.makespan);
  EXPECT_LT(m1.utilization, 1.0);
}

TEST(SchedFailures, RestartsRecordedInOutcomes) {
  auto jobs = sched::make_workload({100, 80.0, 1.2, 0.0, 0.0, 11});
  sched::SchedulerConfig cfg{4, sched::Policy::Fcfs, 0.0, 0};
  cfg.gpu_mtbf = 500.0;  // aggressive: plenty of failures
  cfg.gpu_repair_time = 20.0;
  cfg.fault_seed = 17;
  sched::Simulator sim(cfg);
  auto m = sim.run(jobs);
  EXPECT_EQ(m.completed, jobs.size());
  std::size_t restarts = 0;
  for (const auto& o : sim.outcomes()) {
    restarts += static_cast<std::size_t>(o.restarts);
    EXPECT_GE(o.finish_time, o.start_time);
  }
  EXPECT_EQ(restarts, m.requeues);
  EXPECT_GT(restarts, 0u);
}

TEST(SchedFailures, SeededFaultsAreReproducible) {
  auto jobs = sched::make_workload({150, 50.0, 1.5, 0.0, 0.0, 9});
  sched::SchedulerConfig cfg{8, sched::Policy::SjfQuota, 0.0, 0};
  cfg.gpu_mtbf = 1000.0;
  cfg.gpu_repair_time = 25.0;
  cfg.fault_seed = 21;
  auto a = sched::Simulator(cfg).run(jobs);
  auto b = sched::Simulator(cfg).run(jobs);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.gpu_failures, b.gpu_failures);
  EXPECT_EQ(a.requeues, b.requeues);
  EXPECT_DOUBLE_EQ(a.lost_gpu_time, b.lost_gpu_time);
}

}  // namespace
