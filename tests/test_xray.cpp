// Tests for coe::xray: cross-rank trace merge, the distributed critical
// path and its tiling invariant (path length == replayed makespan), the
// five-way blame split, straggler/imbalance attribution, loud failure on
// malformed logs, and the merged Chrome export (DESIGN.md section 16).

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include "core/exec.hpp"
#include "la/csr.hpp"
#include "la/krylov.hpp"
#include "md/replicated.hpp"
#include "mpi/comm.hpp"
#include "net/net.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "stencil/distributed.hpp"
#include "xray/xray.hpp"

namespace {

using namespace coe;

hsim::ClusterModel test_cluster(double alpha, double beta) {
  hsim::ClusterModel cl;
  cl.name = "test";
  cl.nodes = 64;
  cl.alpha = alpha;
  cl.beta = beta;
  return cl;
}

void push_compute(net::NetLog& log, int rank, double seconds) {
  log.push({net::NetEvent::Kind::Compute, rank, -1, 0, 0.0, seconds, true});
}

void push_send(net::NetLog& log, int rank, int dst, int tag, double bytes,
               bool blocking) {
  log.push({net::NetEvent::Kind::Send, rank, dst, tag, bytes, 0.0, blocking});
}

void push_recv(net::NetLog& log, int rank, int src, int tag, double bytes) {
  log.push({net::NetEvent::Kind::Recv, rank, src, tag, bytes, 0.0, true});
}

xray::Report analyze(const net::NetLog& log, const hsim::ClusterModel& cl,
                     int ranks,
                     const std::vector<obs::TraceBuffer>* traces = nullptr) {
  xray::MergeInputs in;
  in.log = &log;
  in.cluster = &cl;
  in.ranks = ranks;
  in.rank_traces = traces;
  return xray::analyze(in);
}

/// The tiling invariant: consecutive critical steps abut, the path spans
/// [0, makespan], and its length matches to 1e-9 relative.
void expect_tiles(const xray::Report& rep) {
  const double tol = 1e-9 * std::max(1.0, rep.makespan_s);
  ASSERT_FALSE(rep.critical_path.empty());
  EXPECT_NEAR(rep.critical_path.front().start_s, 0.0, tol);
  for (std::size_t i = 0; i + 1 < rep.critical_path.size(); ++i) {
    EXPECT_NEAR(rep.critical_path[i].end_s,
                rep.critical_path[i + 1].start_s, tol)
        << "step " << i;
  }
  EXPECT_NEAR(rep.critical_path.back().end_s, rep.makespan_s, tol);
  EXPECT_NEAR(rep.critical_s, rep.makespan_s, tol);
  double edge_sum = 0.0;
  for (double e : rep.edge_seconds) edge_sum += e;
  EXPECT_NEAR(edge_sum, rep.critical_s, tol);
}

void expect_blame_tiles(const xray::Report& rep) {
  const double tol = 1e-9 * std::max(1.0, rep.timeline_s);
  ASSERT_EQ(rep.blame.size(), static_cast<std::size_t>(rep.ranks));
  for (const auto& b : rep.blame) {
    EXPECT_NEAR(b.total_s(), rep.timeline_s, tol) << "rank " << b.rank;
    if (rep.timeline_s > 0.0) {
      double pct = 0.0;
      for (int k = 0; k < 5; ++k) {
        pct += b.pct(static_cast<xray::Blame>(k));
      }
      EXPECT_NEAR(pct, 100.0, 1e-6) << "rank " << b.rank;
    }
  }
}

// ---------------------------------------------------------------------------
// Hand-built programs with exact expected values.
// ---------------------------------------------------------------------------

TEST(Xray, SerialChainExactCriticalPath) {
  // r0: compute a, blocking send B; r1: recv, compute b. Everything is on
  // the critical path: a, then the message (wire + latency + drain), then b.
  const double a = 1e-3, b = 2e-3, alpha = 1e-6, beta = 1e-9;
  const double B = 1e6;        // bytes
  const double w = B * beta;   // wire time at injection bw 1/beta
  const auto cl = test_cluster(alpha, beta);
  net::NetLog log;
  push_compute(log, 0, a);
  push_send(log, 0, 1, 7, B, true);
  push_recv(log, 1, 0, 7, B);
  push_compute(log, 1, b);

  const auto rep = analyze(log, cl, 2);
  ASSERT_TRUE(rep.well_formed);
  EXPECT_EQ(rep.matched_messages, 1u);
  EXPECT_EQ(rep.unmatched_sends, 0u);
  const double M = a + alpha + 2 * w + b;
  EXPECT_NEAR(rep.makespan_s, M, 1e-15);
  expect_tiles(rep);
  expect_blame_tiles(rep);

  // Exact step structure: r0 compute (root), r0 send, r1 recv via the
  // message edge, r1 compute.
  ASSERT_EQ(rep.critical_path.size(), 4u);
  EXPECT_EQ(rep.critical_path[0].rank, 0);
  EXPECT_EQ(rep.critical_path[0].via, xray::EdgeKind::Root);
  EXPECT_NEAR(rep.critical_path[0].end_s, a, 1e-15);
  EXPECT_EQ(rep.critical_path[1].rank, 0);
  EXPECT_EQ(rep.critical_path[1].via, xray::EdgeKind::Program);
  EXPECT_NEAR(rep.critical_path[1].end_s, a + alpha + w, 1e-15);
  EXPECT_EQ(rep.critical_path[2].rank, 1);
  EXPECT_EQ(rep.critical_path[2].via, xray::EdgeKind::Message);
  EXPECT_NEAR(rep.critical_path[2].end_s, a + alpha + 2 * w, 1e-15);
  EXPECT_EQ(rep.critical_path[3].rank, 1);
  EXPECT_EQ(rep.critical_path[3].via, xray::EdgeKind::Program);

  // Blame: r1's wait on the message is comm-wait, not compute.
  const auto& b0 = rep.blame[0];
  const auto& b1 = rep.blame[1];
  EXPECT_NEAR(b0.seconds[0], a, 1e-15);                       // compute
  EXPECT_NEAR(b0.seconds[3], w, 1e-15);                       // comm (send)
  EXPECT_NEAR(b0.seconds[4], M - (a + w), 1e-15);             // tail idle
  EXPECT_NEAR(b1.seconds[0], b, 1e-15);
  EXPECT_NEAR(b1.seconds[3], a + alpha + 2 * w, 1e-15);       // recv wait
  EXPECT_NEAR(b1.seconds[4], 0.0, 1e-15);

  // r1 computed more: it is the (mild) straggler.
  EXPECT_EQ(rep.straggler_rank, 1);
  EXPECT_NEAR(rep.imbalance_ratio, b / ((a + b) / 2.0), 1e-12);
}

TEST(Xray, ForkJoinCollectiveBlamesLastArriver) {
  // Four ranks compute (r+1)*1ms then allreduce: the path is rank 3's
  // compute followed by the collective, entered via a collective edge.
  const auto cl = test_cluster(1e-6, 1e-9);
  const int P = 4;
  net::NetLog log;
  for (int r = 0; r < P; ++r) {
    push_compute(log, r, (r + 1) * 1e-3);
    log.push({net::NetEvent::Kind::Allreduce, r, -1, 0, 64.0, 0.0, true});
  }
  const auto rep = analyze(log, cl, P);
  ASSERT_TRUE(rep.well_formed);
  const double entry = 4e-3;
  const double cost = cl.allreduce(64, P);
  EXPECT_NEAR(rep.makespan_s, entry + cost, 1e-15);
  expect_tiles(rep);
  expect_blame_tiles(rep);

  ASSERT_EQ(rep.critical_path.size(), 2u);
  EXPECT_EQ(rep.critical_path[0].rank, 3);
  EXPECT_EQ(rep.critical_path[0].via, xray::EdgeKind::Root);
  EXPECT_NEAR(rep.critical_path[0].end_s, entry, 1e-15);
  EXPECT_EQ(rep.critical_path[1].via, xray::EdgeKind::Collective);

  // Everyone but rank 3 charges the gap to imbalance; the cost itself is
  // comm-wait on every rank.
  for (int r = 0; r < P; ++r) {
    const auto& b = rep.blame[static_cast<std::size_t>(r)];
    EXPECT_NEAR(b.seconds[4], entry - (r + 1) * 1e-3, 1e-15) << r;
    EXPECT_NEAR(b.seconds[3], cost, 1e-15) << r;
  }
  EXPECT_EQ(rep.straggler_rank, 3);
  EXPECT_NEAR(rep.imbalance_ratio, 4e-3 / 2.5e-3, 1e-12);
}

TEST(Xray, AllToAllPostedSendsMatchAndTile) {
  // Naive all-to-all with posted sends: exercises injection-engine chains
  // (back-to-back sends) and ejection chains (back-to-back drains).
  const auto cl = test_cluster(2e-6, 2e-9);
  const int P = 4;
  net::NetLog log;
  for (int r = 0; r < P; ++r) {
    push_compute(log, r, (1.0 + r) * 1e-4);
    for (int d = 0; d < P; ++d) {
      if (d != r) push_send(log, r, d, r, 4096.0 * (d + 1), false);
    }
    for (int s = 0; s < P; ++s) {
      if (s != r) push_recv(log, r, s, s, 4096.0 * (r + 1));
    }
  }
  const auto rep = analyze(log, cl, P);
  ASSERT_TRUE(rep.well_formed)
      << (rep.diagnostics.empty() ? "" : rep.diagnostics.front());
  EXPECT_EQ(rep.matched_messages, static_cast<std::size_t>(P * (P - 1)));
  EXPECT_EQ(rep.unmatched_sends, 0u);
  expect_tiles(rep);
  expect_blame_tiles(rep);
}

// ---------------------------------------------------------------------------
// Fuzz: the invariant on random deadlock-free programs.
// ---------------------------------------------------------------------------

TEST(Xray, FuzzCriticalPathEqualsRepricedMakespan) {
  // Generative construction keeps every log deadlock-free: a "message"
  // appends the Send to the source AND the matching Recv to the
  // destination immediately, so every wait points backward in generation
  // order; collectives append to all ranks at once.
  std::mt19937 rng(20260809);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (int iter = 0; iter < 150; ++iter) {
    const int P = 2 + static_cast<int>(uni(rng) * 6.0);
    hsim::ClusterModel cl = test_cluster(
        uni(rng) < 0.2 ? 0.0 : 1e-6 * (1.0 + 50.0 * uni(rng)),
        1e-9 * (1.0 + 9.0 * uni(rng)));
    if (uni(rng) < 0.3) cl.injection_bw = 2e8 * (1.0 + uni(rng));
    if (uni(rng) < 0.3) cl.bisection_factor = 0.25 + 0.75 * uni(rng);
    net::NetLog log;
    const int ops = 5 + static_cast<int>(uni(rng) * 35.0);
    for (int k = 0; k < ops; ++k) {
      const double dice = uni(rng);
      if (dice < 0.35) {
        push_compute(log, static_cast<int>(uni(rng) * P), 1e-5 +
                     1e-3 * uni(rng));
      } else if (dice < 0.85) {
        const int src = static_cast<int>(uni(rng) * P);
        int dst = static_cast<int>(uni(rng) * P);
        if (dst == src) dst = (dst + 1) % P;
        const int tag = static_cast<int>(uni(rng) * 4.0);
        const double bytes = 1.0 + 1e6 * uni(rng);
        push_send(log, src, dst, tag, bytes, uni(rng) < 0.5);
        push_recv(log, dst, src, tag, bytes);
      } else if (dice < 0.95) {
        const double bytes = 8.0 + 1e5 * uni(rng);
        for (int r = 0; r < P; ++r) {
          log.push({net::NetEvent::Kind::Allreduce, r, -1, 0, bytes, 0.0,
                    true});
        }
      } else {
        for (int r = 0; r < P; ++r) {
          log.push({net::NetEvent::Kind::Barrier, r, -1, 0, 0.0, 0.0, true});
        }
      }
    }
    const auto rep = analyze(log, cl, P);
    ASSERT_TRUE(rep.well_formed)
        << "iter " << iter << ": "
        << (rep.diagnostics.empty() ? "?" : rep.diagnostics.front());
    if (rep.makespan_s > 0.0) {
      SCOPED_TRACE("iter " + std::to_string(iter));
      expect_tiles(rep);
    }
    expect_blame_tiles(rep);
    // reprice() must be exactly the replay's summary.
    const auto direct = net::reprice(log, cl, P);
    EXPECT_EQ(direct.timeline_s, rep.replay.result.timeline_s);
    EXPECT_EQ(direct.sequential_s, rep.replay.result.sequential_s);
    EXPECT_EQ(direct.messages, rep.replay.result.messages);
  }
}

// ---------------------------------------------------------------------------
// Malformed logs fail loudly.
// ---------------------------------------------------------------------------

TEST(Xray, UnmatchedSendIsDiagnosedLoudly) {
  const auto cl = test_cluster(1e-6, 1e-9);
  net::NetLog log;
  push_compute(log, 0, 1e-3);
  push_send(log, 0, 1, 5, 1024.0, false);
  push_compute(log, 1, 2e-3);
  const auto rep = analyze(log, cl, 2);
  EXPECT_FALSE(rep.well_formed);
  EXPECT_EQ(rep.unmatched_sends, 1u);
  ASSERT_FALSE(rep.diagnostics.empty());
  EXPECT_NE(rep.diagnostics.front().find("unmatched send"),
            std::string::npos);
  // The legacy summary never flagged sole unmatched sends; that behavior
  // is pinned (only xray's merged view escalates them).
  EXPECT_TRUE(rep.replay.result.well_formed);
  // The replay still completed, so the path invariant still holds.
  expect_tiles(rep);
}

TEST(Xray, TruncatedLogBlockedRecvIsDiagnosedLoudly) {
  const auto cl = test_cluster(1e-6, 1e-9);
  net::NetLog log;
  push_compute(log, 0, 1e-3);
  push_recv(log, 0, 1, 3, 512.0);  // rank 1's send was lost
  push_compute(log, 1, 1e-3);
  const auto rep = analyze(log, cl, 2);
  EXPECT_FALSE(rep.well_formed);
  EXPECT_FALSE(rep.replay.result.well_formed);
  ASSERT_FALSE(rep.diagnostics.empty());
  bool mentions_blocked = false;
  for (const auto& d : rep.diagnostics) {
    if (d.find("blocked in recv") != std::string::npos &&
        d.find("truncated") != std::string::npos) {
      mentions_blocked = true;
    }
  }
  EXPECT_TRUE(mentions_blocked);
  // No critical path over a deadlocked replay.
  EXPECT_TRUE(rep.critical_path.empty());
}

TEST(Xray, OutOfRangeRankIsDiagnosed) {
  const auto cl = test_cluster(1e-6, 1e-9);
  net::NetLog log;
  push_compute(log, 7, 1e-3);  // world only has 2 ranks
  const auto rep = analyze(log, cl, 2);
  EXPECT_FALSE(rep.well_formed);
  ASSERT_FALSE(rep.diagnostics.empty());
  EXPECT_NE(rep.diagnostics.front().find("out-of-range"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Driver integration.
// ---------------------------------------------------------------------------

TEST(Xray, SkewedWaveFindsStragglerAndBlamesNeighborsOnCommWait) {
  const int ranks = 4;
  const auto cl = hsim::clusters::sierra(ranks);
  net::NetLog log;
  stencil::DistributedWaveConfig cfg;
  cfg.nx = 16;
  cfg.ny = 8;
  cfg.nz = 8;
  cfg.steps = 3;
  cfg.cluster = &cl;
  cfg.log = &log;
  cfg.skew_rank = 2;
  cfg.skew_factor = 8.0;
  cfg.trace_ranks = true;
  auto u0 = [](double x, double y, double z) {
    return std::sin(3.14159 * x) * std::sin(3.14159 * y) *
           std::sin(3.14159 * z);
  };
  const auto skewed = distributed_wave_run(ranks, cfg, u0);

  // The skew only touches modeled cost: the field is bitwise unchanged.
  stencil::DistributedWaveConfig plain = cfg;
  plain.cluster = nullptr;
  plain.log = nullptr;
  plain.skew_rank = -1;
  plain.trace_ranks = false;
  const auto ref = distributed_wave_run(ranks, plain, u0);
  EXPECT_EQ(skewed.field, ref.field);

  ASSERT_EQ(skewed.rank_traces.size(), 4u);
  EXPECT_EQ(skewed.rank_traces[2].rank(), 2);

  const auto rep = analyze(log, cl, ranks, &skewed.rank_traces);
  ASSERT_TRUE(rep.well_formed)
      << (rep.diagnostics.empty() ? "?" : rep.diagnostics.front());
  expect_tiles(rep);
  expect_blame_tiles(rep);
  EXPECT_NEAR(rep.timeline_s, skewed.modeled.timeline_s, 1e-15);

  // The injected straggler dominates...
  EXPECT_EQ(rep.straggler_rank, 2);
  EXPECT_GT(rep.imbalance_ratio, 2.0);
  ASSERT_FALSE(rep.stragglers.empty());
  EXPECT_EQ(rep.stragglers.front().rank, 2);
  // ...and its neighbors spend their time waiting on its halos, not idle.
  for (int nb : {1, 3}) {
    const auto& b = rep.blame[static_cast<std::size_t>(nb)];
    EXPECT_GT(b.seconds[3], b.seconds[4]) << "rank " << nb;  // comm > idle
    EXPECT_GT(b.pct(xray::Blame::CommWait),
              rep.blame[2].pct(xray::Blame::CommWait))
        << "rank " << nb;
  }

  // Phase table from the rank traces: the skewed rank owns the stencil max.
  bool saw_stencil = false;
  for (const auto& p : rep.phases) {
    if (p.name == "stencil") {
      saw_stencil = true;
      EXPECT_EQ(p.max_rank, 2);
      EXPECT_GT(p.ratio, 2.0);
    }
  }
  EXPECT_TRUE(saw_stencil);
}

TEST(Xray, ReplicatedMdMergesCollectiveTraffic) {
  const int ranks = 3;
  const auto cl = hsim::clusters::cori(ranks);
  net::NetLog log;
  md::ReplicatedConfig cfg;
  cfg.per_side = 3;
  cfg.steps = 3;
  cfg.log = &log;
  cfg.cluster = &cl;
  const auto res = md::replicated_md_run(ranks, cfg);
  EXPECT_GT(res.modeled.timeline_s, 0.0);
  const auto rep = analyze(log, cl, ranks);
  ASSERT_TRUE(rep.well_formed)
      << (rep.diagnostics.empty() ? "?" : rep.diagnostics.front());
  EXPECT_GT(rep.matched_messages, 0u);
  expect_tiles(rep);
  expect_blame_tiles(rep);
  EXPECT_EQ(rep.timeline_s, res.modeled.timeline_s);
}

TEST(Xray, CgLoggedReduceMergesSolverRounds) {
  const int ranks = 4;
  const auto cl = hsim::clusters::sierra(ranks);
  auto a = la::poisson2d(12, 12);
  la::CsrOperator op(a);
  la::JacobiPreconditioner jacobi(a);
  std::vector<double> b(a.rows(), 1.0);
  net::NetLog log;
  mpi::run(ranks, [&](mpi::Communicator& comm) {
    auto ctx = core::make_seq();
    std::vector<double> x(a.rows(), 0.0);
    la::SolveOptions opts;
    opts.max_iters = 30;
    opts.rel_tol = 1e-8;
    opts.reduce = net::logged_reduce(
        comm, net::AllreduceAlgo::RecursiveDoubling, nullptr,
        net::RankLogger(&log, comm.rank()), &ctx);
    la::cg(ctx, op, jacobi, b, x, opts);
  });
  const auto rep = analyze(log, cl, ranks);
  ASSERT_TRUE(rep.well_formed)
      << (rep.diagnostics.empty() ? "?" : rep.diagnostics.front());
  EXPECT_GT(rep.matched_messages, 0u);
  // The hook interleaves real compute deltas with the rounds.
  bool saw_compute = false;
  for (const auto& re : rep.replay.events) {
    if (re.ev.kind == net::NetEvent::Kind::Compute && re.ev.seconds > 0.0) {
      saw_compute = true;
    }
  }
  EXPECT_TRUE(saw_compute);
  expect_tiles(rep);
  expect_blame_tiles(rep);
}

// ---------------------------------------------------------------------------
// Wall-clock stamps and exports.
// ---------------------------------------------------------------------------

TEST(Xray, RecvEventsCarryWallClockStamps) {
  net::NetLog log;
  mpi::run(2, [&](mpi::Communicator& comm) {
    net::RankLogger logger(&log, comm.rank());
    std::vector<double> v(8, 1.0);
    if (comm.rank() == 0) {
      comm.send(1, 1, v);
      logger.send(1, 1, 64.0, true);
      comm.send(1, 2, v);
      logger.send(1, 2, 64.0, true);
    } else {
      comm.recv(0, 1);
      logger.recv(0, 1, 64.0);
      comm.recv(0, 2);
      logger.recv(0, 2, 64.0);
    }
  });
  double last = -1.0;
  std::size_t recvs = 0;
  for (const auto& e : log.snapshot()) {
    if (e.kind == net::NetEvent::Kind::Recv) {
      ++recvs;
      EXPECT_GE(e.t_wall, 0.0);
      EXPECT_GE(e.t_wall, last);  // completion order on one rank
      last = e.t_wall;
    } else {
      EXPECT_LT(e.t_wall, 0.0);  // only completions are stamped
    }
  }
  EXPECT_EQ(recvs, 2u);
}

TEST(Xray, TraceBufferRankRoundTripsThroughChromeJson) {
  obs::TraceBuffer buf(16);
  buf.set_rank(3);
  buf.set_source("host", 5e-6);
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::Kernel;
  e.label = "k";
  e.phase = "p";
  e.t_start = 1e-3;
  e.duration = 2e-3;
  buf.push(e);
  const std::string doc = obs::chrome_trace_json(buf);
  EXPECT_NE(doc.find("process_name"), std::string::npos);
  EXPECT_NE(doc.find("process_sort_index"), std::string::npos);
  EXPECT_NE(doc.find("\"pid\":3"), std::string::npos);
  const obs::TraceBuffer back = obs::parse_chrome_trace(doc);
  EXPECT_EQ(back.rank(), 3);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.snapshot()[0].label, "k");
}

TEST(Xray, ReportJsonAndMergedTraceAreWellFormed) {
  const auto cl = test_cluster(1e-6, 1e-9);
  net::NetLog log;
  push_compute(log, 0, 1e-3);
  push_send(log, 0, 1, 7, 1e5, true);
  push_recv(log, 1, 0, 7, 1e5);
  push_compute(log, 1, 2e-3);
  std::vector<obs::TraceBuffer> traces(2);
  for (int r = 0; r < 2; ++r) {
    traces[static_cast<std::size_t>(r)].set_rank(r);
    obs::TraceEvent e;
    e.kind = obs::TraceEvent::Kind::Kernel;
    e.label = "wave";
    e.phase = "stencil";
    e.t_start = 0.0;
    e.duration = r == 0 ? 1e-3 : 2e-3;
    traces[static_cast<std::size_t>(r)].push(e);
  }
  const auto rep = analyze(log, cl, 2, &traces);
  ASSERT_TRUE(rep.well_formed);

  const obs::Json j = xray::report_json(rep, "unit");
  EXPECT_EQ(j.at("schema").as_string(), "coe-xray-v1");
  EXPECT_EQ(j.at("ranks").as_number(), 2.0);
  double pct = 0.0;
  for (const auto& [k, v] : j.at("blame").at(0).at("pct").fields()) {
    pct += v.as_number();
  }
  EXPECT_NEAR(pct, 100.0, 1e-6);
  EXPECT_EQ(j.at("imbalance").at("straggler_rank").as_number(), 1.0);
  EXPECT_GE(j.at("imbalance").at("ratio").as_number(), 1.0);

  const std::string text = xray::straggler_report(rep, "unit");
  EXPECT_NE(text.find("straggler"), std::string::npos);
  EXPECT_NE(text.find("blame"), std::string::npos);

  // The merged Chrome document parses, every event carries ts + name, the
  // matched pair appears as an s/f flow, and the kernel events survive a
  // parse_chrome_trace round trip.
  const std::string merged = xray::merged_chrome_trace_json(rep, &traces);
  const obs::Json doc = obs::Json::parse(merged);
  std::size_t flows = 0;
  for (const obs::Json& ev : doc.at("traceEvents").items()) {
    EXPECT_TRUE(ev.contains("ts"));
    EXPECT_TRUE(ev.contains("name"));
    if (ev.contains("ph") && (ev.at("ph").as_string() == "s" ||
                              ev.at("ph").as_string() == "f")) {
      ++flows;
    }
  }
  EXPECT_EQ(flows, 2u);  // one s + one f for the single matched message
  EXPECT_TRUE(doc.at("otherData").at("merged").as_bool());
  const obs::TraceBuffer flat = obs::parse_chrome_trace(merged);
  EXPECT_EQ(flat.size(), 2u);  // the two kernels; net rows are decoration

  obs::MetricsRegistry metrics;
  xray::publish(rep, metrics);
  EXPECT_EQ(metrics.gauge("xray.ranks"), 2.0);
  EXPECT_NEAR(metrics.gauge("xray.coverage"), 1.0, 1e-9);
  EXPECT_EQ(metrics.gauge("xray.straggler_rank"), 1.0);
  double blame_pct = 0.0;
  for (const char* k :
       {"compute", "memory", "launch_transfer", "comm_wait", "imbalance"}) {
    blame_pct += metrics.gauge(std::string("xray.blame.") + k + "_pct");
  }
  EXPECT_NEAR(blame_pct, 100.0, 1e-6);
}

}  // namespace
