// Tests for the ParaDyn module: variant equivalence, exact load/store
// accounting, and the Figure 6 relationships (fusion halves traffic, DSE
// trims stores further).
#include <gtest/gtest.h>

#include "dyn/paradyn.hpp"

namespace {

using namespace coe;

TEST(Paradyn, AllVariantsComputeIdenticalState) {
  const std::size_t n = 4096;
  dyn::ElementArrays base(n);
  auto ctx = core::make_seq();

  dyn::ElementArrays a = base, b = base, c = base;
  dyn::run_update(ctx, a, 50, dyn::LoopVariant::SmallLoops);
  dyn::run_update(ctx, b, 50, dyn::LoopVariant::Fused);
  dyn::run_update(ctx, c, 50, dyn::LoopVariant::FusedDse);
  for (std::size_t i = 0; i < n; i += 97) {
    EXPECT_DOUBLE_EQ(a.v[i], b.v[i]);
    EXPECT_DOUBLE_EQ(a.e[i], b.e[i]);
    EXPECT_DOUBLE_EQ(a.v[i], c.v[i]);
    EXPECT_DOUBLE_EQ(a.e[i], c.e[i]);
  }
  EXPECT_DOUBLE_EQ(dyn::state_checksum(a), dyn::state_checksum(c));
}

TEST(Paradyn, PhysicallyPlausibleDamping) {
  // The chain is a damped oscillator per element: velocity magnitude must
  // shrink over time.
  dyn::ElementArrays a(256);
  double v0 = 0.0;
  for (double v : a.v) v0 += v * v;
  auto ctx = core::make_seq();
  dyn::run_update(ctx, a, 2000, dyn::LoopVariant::FusedDse);
  double v1 = 0.0;
  for (double v : a.v) v1 += v * v;
  EXPECT_LT(v1, v0);
}

TEST(Paradyn, TrafficCountsExact) {
  const std::size_t n = 1000;
  dyn::ElementArrays a(n);
  auto ctx = core::make_seq();
  auto small = dyn::run_update(ctx, a, 1, dyn::LoopVariant::SmallLoops);
  EXPECT_EQ(small.loads, 12u * n);
  EXPECT_EQ(small.stores, 7u * n);
  EXPECT_EQ(small.kernels, 7u);
  auto fused = dyn::run_update(ctx, a, 1, dyn::LoopVariant::Fused);
  EXPECT_EQ(fused.loads, 4u * n);
  EXPECT_EQ(fused.stores, 7u * n);
  EXPECT_EQ(fused.kernels, 1u);
  auto dse = dyn::run_update(ctx, a, 1, dyn::LoopVariant::FusedDse);
  EXPECT_EQ(dse.loads, 4u * n);
  EXPECT_EQ(dse.stores, 5u * n);
}

TEST(Paradyn, Figure6Relationships) {
  const std::size_t n = 1 << 14;
  dyn::ElementArrays a(n);
  auto ctx = core::make_seq();
  const auto small = dyn::run_update(ctx, a, 1, dyn::LoopVariant::SmallLoops);
  const auto fused = dyn::run_update(ctx, a, 1, dyn::LoopVariant::Fused);
  const auto dse = dyn::run_update(ctx, a, 1, dyn::LoopVariant::FusedDse);
  // SLNSP roughly halves total traffic (the paper's ~2X), dominated by the
  // 3X load reduction.
  const double fusion_gain = double(small.total()) / double(fused.total());
  EXPECT_GT(fusion_gain, 1.5);
  EXPECT_LT(fusion_gain, 2.5);
  EXPECT_EQ(small.loads / fused.loads, 3u);
  // DSE trims the dead stores for an additional ~20% traffic cut.
  const double dse_gain = double(fused.total()) / double(dse.total());
  EXPECT_GT(dse_gain, 1.1);
  EXPECT_LT(dse_gain, 1.4);
}

TEST(Paradyn, LaunchOverheadVisibleOnDevice) {
  // On the modeled GPU, seven launches per step vs one: the launch-count
  // difference is exactly 6 per step.
  dyn::ElementArrays a(128);
  auto gpu1 = core::make_device();
  auto gpu2 = core::make_device();
  dyn::run_update(gpu1, a, 10, dyn::LoopVariant::SmallLoops);
  dyn::run_update(gpu2, a, 10, dyn::LoopVariant::Fused);
  EXPECT_EQ(gpu1.counters().launches, 70u);
  EXPECT_EQ(gpu2.counters().launches, 10u);
  EXPECT_GT(gpu1.simulated_time(), gpu2.simulated_time());
}

}  // namespace
