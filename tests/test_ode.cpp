// Tests for the mini-SUNDIALS module: NVector operations and the RK4,
// RK23, and BDF integrators on problems with known solutions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "la/la.hpp"
#include "ode/ode.hpp"

namespace {

using namespace coe;

TEST(NVector, OperationsMatchReference) {
  auto ctx = core::make_seq();
  ode::NVector x(ctx, 4), y(ctx, 4), z(ctx, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    x.data()[i] = double(i + 1);
    y.data()[i] = 2.0;
  }
  z.linear_sum(2.0, x, -1.0, y);
  EXPECT_DOUBLE_EQ(z.data()[0], 0.0);
  EXPECT_DOUBLE_EQ(z.data()[3], 6.0);
  EXPECT_DOUBLE_EQ(x.dot(y), 20.0);
  EXPECT_DOUBLE_EQ(x.max_norm(), 4.0);
  z.fill(3.0);
  z.scale(2.0);
  EXPECT_DOUBLE_EQ(z.data()[2], 6.0);
  z.axpy(1.0, x);
  EXPECT_DOUBLE_EQ(z.data()[0], 7.0);
}

TEST(NVector, WrmsNormIsScaleAware) {
  auto ctx = core::make_seq();
  ode::NVector err(ctx, 2), ref(ctx, 2);
  ref.data()[0] = 1.0;
  ref.data()[1] = 1000.0;
  err.data()[0] = 1e-6;
  err.data()[1] = 1e-3;
  // rtol=1e-6, atol=0: both components are exactly at weight 1.
  EXPECT_NEAR(err.wrms_norm(ref, 1e-6, 0.0), 1.0, 1e-12);
}

// Scalar exponential decay: y' = -k y.
class Decay final : public ode::OdeRhs {
 public:
  explicit Decay(double k) : k_(k) {}
  void eval(double, const ode::NVector& y, ode::NVector& ydot) override {
    const double k = k_;
    auto yd = ydot.data();
    auto ys = y.data();
    y.ctx().forall(y.size(), {1.0, 16.0},
                   [&](std::size_t i) { yd[i] = -k * ys[i]; });
  }

 private:
  double k_;
};

// Harmonic oscillator: energy-conserving reference for RK4 accuracy.
class Oscillator final : public ode::OdeRhs {
 public:
  void eval(double, const ode::NVector& y, ode::NVector& ydot) override {
    ydot.data()[0] = y.data()[1];
    ydot.data()[1] = -y.data()[0];
  }
};

TEST(Rk4, FourthOrderConvergence) {
  auto ctx = core::make_seq();
  Oscillator osc;
  auto err_at = [&](std::size_t steps) {
    ode::NVector y(ctx, 2);
    y.data()[0] = 1.0;
    y.data()[1] = 0.0;
    ode::Rk4 rk;
    rk.integrate(osc, 0.0, 2.0 * M_PI, steps, y);
    return std::abs(y.data()[0] - 1.0) + std::abs(y.data()[1]);
  };
  const double e1 = err_at(50);
  const double e2 = err_at(100);
  const double rate = std::log2(e1 / e2);
  EXPECT_NEAR(rate, 4.0, 0.3);
}

TEST(Rk23, AdaptiveMatchesExactDecay) {
  auto ctx = core::make_seq();
  Decay rhs(2.0);
  ode::NVector y(ctx, 3, 1.0);
  ode::AdaptiveOptions opts;
  opts.rtol = 1e-8;
  opts.atol = 1e-10;
  ode::Rk23 rk(opts);
  auto stats = rk.integrate(rhs, 0.0, 1.0, y);
  EXPECT_GT(stats.steps, 10u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(y.data()[i], std::exp(-2.0), 1e-6);
  }
}

TEST(Rk23, TightensStepsWithTolerance) {
  auto ctx = core::make_seq();
  Decay rhs(5.0);
  auto steps_at = [&](double rtol) {
    ode::NVector y(ctx, 1, 1.0);
    ode::AdaptiveOptions opts;
    opts.rtol = rtol;
    opts.atol = rtol * 1e-2;
    ode::Rk23 rk(opts);
    return rk.integrate(rhs, 0.0, 1.0, y).steps;
  };
  EXPECT_GT(steps_at(1e-9), steps_at(1e-4));
}

TEST(Bdf, FunctionalIterationNonstiff) {
  auto ctx = core::make_seq();
  Decay rhs(1.0);
  ode::NVector y(ctx, 2, 1.0);
  ode::BdfOptions opts;
  opts.rtol = 1e-7;
  opts.atol = 1e-10;
  opts.dt_init = 1e-3;
  ode::Bdf bdf(opts);
  auto stats = bdf.integrate(rhs, nullptr, 0.0, 1.0, y);
  EXPECT_GT(stats.steps, 0u);
  EXPECT_NEAR(y.data()[0], std::exp(-1.0), 1e-4);
}

// Stiff linear system y' = A y with A = -L (graph Laplacian-like):
// Newton via an exact dense linear solver.
class StiffLinearRhs final : public ode::OdeRhs {
 public:
  explicit StiffLinearRhs(const la::CsrMatrix& a) : a_(&a) {}
  void eval(double, const ode::NVector& y, ode::NVector& ydot) override {
    a_->spmv(y.ctx(), y.data(), ydot.data());
    ydot.scale(-1.0);
  }

 private:
  const la::CsrMatrix* a_;
};

class DenseNewtonSolver final : public ode::OdeLinearSolver {
 public:
  explicit DenseNewtonSolver(const la::CsrMatrix& a) : a_(&a) {}
  void setup(double, const ode::NVector&, double gamma) override {
    const std::size_t n = a_->rows();
    la::DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    // I - gamma*J with J = -A  =>  I + gamma*A.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = a_->rowptr()[i]; k < a_->rowptr()[i + 1]; ++k) {
        m(i, a_->colind()[k]) += gamma * a_->values()[k];
      }
    }
    lu_ = std::make_unique<la::LuFactor>(m);
  }
  void solve(const ode::NVector& r, ode::NVector& x) override {
    x.copy_from(r);
    lu_->solve(x.data());
  }

 private:
  const la::CsrMatrix* a_;
  std::unique_ptr<la::LuFactor> lu_;
};

TEST(Bdf, NewtonHandlesStiffSystem) {
  auto ctx = core::make_seq();
  // Stiff: Poisson matrix scaled up (eigenvalues up to ~8 * 100).
  auto a = la::poisson2d(6, 6);
  for (auto& v : a.values()) v *= 100.0;
  StiffLinearRhs rhs(a);
  DenseNewtonSolver newton(a);

  ode::NVector y(ctx, a.rows(), 1.0);
  ode::BdfOptions opts;
  opts.rtol = 1e-6;
  opts.atol = 1e-9;
  opts.dt_init = 1e-4;
  ode::Bdf bdf(opts);
  auto stats = bdf.integrate(rhs, &newton, 0.0, 0.5, y);
  EXPECT_GT(stats.newton_iters, 0u);
  EXPECT_GT(stats.lin_setups, 0u);

  // Reference via many small RK4 steps.
  ode::NVector yref(ctx, a.rows(), 1.0);
  ode::Rk4 rk;
  rk.integrate(rhs, 0.0, 0.5, 20000, yref);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y.data()[i], yref.data()[i], 1e-4);
  }
}

TEST(Bdf, StiffProblemNeedsFarFewerStepsThanExplicit) {
  auto ctx = core::make_seq();
  auto a = la::poisson2d(6, 6);
  for (auto& v : a.values()) v *= 1000.0;  // stiffer
  StiffLinearRhs rhs(a);
  DenseNewtonSolver newton(a);

  // Loose tolerances and a long horizon: the explicit method is pinned to
  // its stability limit long after the transient has decayed, while BDF is
  // limited only by accuracy.
  ode::NVector yb(ctx, a.rows(), 1.0);
  ode::BdfOptions bopts;
  bopts.rtol = 1e-3;
  bopts.atol = 1e-6;
  ode::Bdf bdf(bopts);
  auto bdf_stats = bdf.integrate(rhs, &newton, 0.0, 5.0, yb);

  ode::NVector ye(ctx, a.rows(), 1.0);
  ode::AdaptiveOptions eopts;
  eopts.rtol = 1e-3;
  eopts.atol = 1e-6;
  ode::Rk23 rk(eopts);
  auto rk_stats = rk.integrate(rhs, 0.0, 5.0, ye);

  // Explicit stability bound forces tiny steps; BDF cruises.
  EXPECT_LT(bdf_stats.steps * 5, rk_stats.steps);
}


TEST(Bdf, StatsAreInternallyConsistent) {
  auto ctx = core::make_seq();
  Decay rhs(3.0);
  ode::NVector y(ctx, 4, 1.0);
  ode::BdfOptions opts;
  opts.rtol = 1e-6;
  opts.atol = 1e-9;
  ode::Bdf bdf(opts);
  auto stats = bdf.integrate(rhs, nullptr, 0.0, 1.0, y);
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GE(stats.rhs_evals, stats.steps);        // >= 1 eval per step
  EXPECT_GE(stats.newton_iters, stats.steps);     // >= 1 iter per solve
  EXPECT_GT(stats.last_dt, 0.0);
}

TEST(Bdf, TighterToleranceMoreSteps) {
  auto ctx = core::make_seq();
  Decay rhs(2.0);
  auto steps_at = [&](double rtol) {
    ode::NVector y(ctx, 1, 1.0);
    ode::BdfOptions opts;
    opts.rtol = rtol;
    opts.atol = rtol * 1e-3;
    ode::Bdf bdf(opts);
    return bdf.integrate(rhs, nullptr, 0.0, 2.0, y).steps;
  };
  EXPECT_GT(steps_at(1e-8), steps_at(1e-3));
}

TEST(Rk4, ExactForLinearDynamics) {
  // RK4 is exact for polynomial solutions of degree <= 4; y' = const is
  // the simplest sanity anchor.
  auto ctx = core::make_seq();
  struct Const final : ode::OdeRhs {
    void eval(double, const ode::NVector&, ode::NVector& ydot) override {
      ydot.fill(2.0);
    }
  } rhs;
  ode::NVector y(ctx, 2, 1.0);
  ode::Rk4 rk;
  rk.integrate(rhs, 0.0, 3.0, 7, y);
  EXPECT_NEAR(y.data()[0], 7.0, 1e-12);
}

}  // namespace
