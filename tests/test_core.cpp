// Unit tests for the portability layer, machine models, buffers and pools.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/coe.hpp"

namespace {

using namespace coe;

TEST(MachineModel, CatalogSanity) {
  const auto v100 = hsim::machines::v100();
  const auto p9 = hsim::machines::power9();
  EXPECT_GT(v100.flops(), p9.flops());
  EXPECT_GT(v100.bandwidth(), p9.bandwidth());
  EXPECT_GT(v100.launch_overhead, 0.0);
  EXPECT_EQ(p9.launch_overhead, 0.0);
  EXPECT_GT(v100.ridge(), 0.0);
}

TEST(MachineModel, VoltaBeatsPascal) {
  const auto v = hsim::machines::v100();
  const auto p = hsim::machines::p100();
  EXPECT_GT(v.flops(), p.flops());
  EXPECT_GT(v.bandwidth(), p.bandwidth());
  EXPECT_GT(v.link_bw, p.link_bw);  // NVLink2 vs NVLink1
}

TEST(CostModel, RooflineRegimes) {
  hsim::CostModel cm(hsim::machines::v100());
  // Memory-bound: 0.1 flop/byte, far below the ridge.
  hsim::KernelCost mem{1e8, 1e9};
  EXPECT_NEAR(cm.kernel_time(mem),
              cm.machine().launch_overhead + 1e9 / cm.machine().bandwidth(),
              1e-12);
  // Compute-bound: 100 flop/byte.
  hsim::KernelCost cpu{1e12, 1e10};
  EXPECT_NEAR(cm.kernel_time(cpu),
              cm.machine().launch_overhead + 1e12 / cm.machine().flops(),
              1e-9);
}

TEST(CostModel, TransferIsLatencyPlusBandwidth) {
  hsim::CostModel cm(hsim::machines::v100());
  const double t1 = cm.transfer_time(0);
  const double t2 = cm.transfer_time(75e9);  // one second worth at link bw
  EXPECT_NEAR(t1, cm.machine().link_latency, 1e-15);
  EXPECT_NEAR(t2 - t1, 1.0, 1e-9);
}

TEST(ClusterModel, CollectiveScaling) {
  const auto net = hsim::clusters::sierra(1024);
  EXPECT_EQ(net.allreduce(1 << 20, 1), 0.0);
  // Allreduce grows ~log in latency; more ranks is never cheaper than 2.
  EXPECT_GT(net.allreduce(1 << 20, 1024), net.allreduce(1 << 20, 2));
  // Gather to one is linear in total data.
  EXPECT_GT(net.gather(1 << 20, 64), net.gather(1 << 20, 8));
}

TEST(Exec, ForallComputesAndCounts) {
  auto ctx = core::make_device();
  std::vector<double> x(1000, 2.0), y(1000, 1.0);
  ctx.forall(1000, {2.0, 24.0}, [&](std::size_t i) { y[i] += 3.0 * x[i]; });
  for (double v : y) EXPECT_DOUBLE_EQ(v, 7.0);
  EXPECT_EQ(ctx.counters().launches, 1u);
  EXPECT_DOUBLE_EQ(ctx.counters().flops, 2000.0);
  EXPECT_DOUBLE_EQ(ctx.counters().bytes, 24000.0);
  EXPECT_GT(ctx.simulated_time(), 0.0);
}

TEST(Exec, ThreadsBackendMatchesSeq) {
  auto seq = core::make_seq();
  auto thr = core::make_threads();
  std::vector<double> a(10000);
  std::vector<double> b(10000);
  seq.forall(a.size(), [&](std::size_t i) { a[i] = double(i) * 1.5; });
  thr.forall(b.size(), [&](std::size_t i) { b[i] = double(i) * 1.5; });
  EXPECT_EQ(a, b);
}

TEST(Exec, Forall3CoversAllIndices) {
  auto ctx = core::make_seq();
  std::vector<int> hits(3 * 4 * 5, 0);
  core::View3D<int> v(hits.data(), 3, 4, 5);
  ctx.forall3(3, 4, 5, {}, [&](std::size_t i, std::size_t j, std::size_t k) {
    v(i, j, k) += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Exec, ReduceSumMatchesSerial) {
  auto thr = core::make_threads();
  const std::size_t n = 100000;
  const double got = thr.reduce_sum(n, {}, [](std::size_t i) {
    return static_cast<double>(i);
  });
  EXPECT_DOUBLE_EQ(got, double(n) * double(n - 1) / 2.0);
}

TEST(Exec, TimelinePhases) {
  auto ctx = core::make_device();
  ctx.set_phase("setup");
  ctx.forall(10, {1.0, 8.0}, [](std::size_t) {});
  ctx.set_phase("solve");
  ctx.forall(10, {1.0, 8.0}, [](std::size_t) {});
  ctx.forall(10, {1.0, 8.0}, [](std::size_t) {});
  ASSERT_EQ(ctx.timeline().phases().size(), 2u);
  EXPECT_EQ(ctx.timeline().phases()[0].name, "setup");
  EXPECT_EQ(ctx.timeline().phases()[1].counters.launches, 2u);
  EXPECT_NEAR(ctx.timeline().total(), ctx.simulated_time(), 1e-12);
}

TEST(Exec, TimelinePhasesCarryTransferDeltas) {
  // Regression: record_transfer used to hand the timeline an empty
  // Counters{}, so per-phase reports silently dropped transfer counts and
  // h2d/d2h bytes.
  auto ctx = core::make_device();
  ctx.set_phase("stage_in");
  ctx.record_transfer(1000.0, true);
  ctx.record_transfer(500.0, true);
  ctx.set_phase("stage_out");
  ctx.record_transfer(250.0, false);
  ASSERT_EQ(ctx.timeline().phases().size(), 2u);
  const auto& in = ctx.timeline().phases()[0];
  const auto& out = ctx.timeline().phases()[1];
  EXPECT_EQ(in.counters.transfers, 2u);
  EXPECT_DOUBLE_EQ(in.counters.h2d_bytes, 1500.0);
  EXPECT_DOUBLE_EQ(in.counters.d2h_bytes, 0.0);
  EXPECT_EQ(out.counters.transfers, 1u);
  EXPECT_DOUBLE_EQ(out.counters.d2h_bytes, 250.0);
  // The per-phase deltas add up to the context-wide counters, and the
  // report prints the transfer columns.
  EXPECT_EQ(in.counters.transfers + out.counters.transfers,
            ctx.counters().transfers);
  const std::string rep = ctx.timeline().report("t");
  EXPECT_NE(rep.find("xfers"), std::string::npos);
  EXPECT_NE(rep.find("GB xfer"), std::string::npos);
}

TEST(Exec, ResetZeroesShadowAccumulators) {
  // Regression: reset() cleared counters and the clock but left shadow
  // machines' accumulated times, so shadow_time() reported stale totals.
  auto ctx = core::make_device();
  const auto shadow = ctx.add_shadow(hsim::machines::power9());
  ctx.forall(1000, {2.0, 16.0}, [](std::size_t) {});
  ctx.record_transfer(1e6, true);
  EXPECT_GT(ctx.shadow_time(shadow), 0.0);
  ctx.reset();
  EXPECT_DOUBLE_EQ(ctx.shadow_time(shadow), 0.0);
  EXPECT_DOUBLE_EQ(ctx.simulated_time(), 0.0);
  // The shadow keeps pricing after the reset.
  ctx.forall(1000, {2.0, 16.0}, [](std::size_t) {});
  EXPECT_GT(ctx.shadow_time(shadow), 0.0);
}

TEST(CostModel, AggregatePredictIsLowerBoundOnMixedWork) {
  // predict() maxes the roofline over *aggregate* totals, so on a workload
  // mixing compute- and memory-bound launches it under-prices the run;
  // per-launch accounting (sim_time, or reprice over a trace) is
  // authoritative. Equality holds when every launch sits on the same side
  // of the ridge.
  auto ctx = core::make_device(hsim::machines::v100());
  ctx.record_kernel({1e12, 1e6});  // strongly compute-bound
  ctx.record_kernel({1e6, 1e9});   // strongly memory-bound
  const hsim::CostModel same(hsim::machines::v100());
  const double agg = same.predict(ctx.counters());
  EXPECT_LT(agg, ctx.simulated_time());

  // Same-regime launches: the aggregate agrees with per-launch.
  auto uniform = core::make_device(hsim::machines::v100());
  uniform.record_kernel({1e12, 1e6});
  uniform.record_kernel({2e12, 1e6});
  EXPECT_NEAR(same.predict(uniform.counters()), uniform.simulated_time(),
              1e-12);
}

TEST(Exec, EmptyReductionsReturnIdentities) {
  for (auto mk : {core::make_seq, core::make_threads}) {
    auto ctx = mk();
    const double sum =
        ctx.reduce_sum(0, {}, [](std::size_t) { return 1.0; });
    EXPECT_DOUBLE_EQ(sum, 0.0);
    const double mx =
        ctx.reduce_max(0, {}, [](std::size_t) { return 1.0; });
    EXPECT_DOUBLE_EQ(mx, -1.7976931348623157e308);
  }
}

TEST(Buffer, TransfersOnlyWhenStale) {
  auto ctx = core::make_device();
  core::Buffer<double> buf(ctx, 1000);
  EXPECT_EQ(ctx.counters().transfers, 0u);
  (void)buf.device_read();  // fresh everywhere: no transfer
  EXPECT_EQ(ctx.counters().transfers, 0u);
  auto h = buf.host_write();
  h[0] = 42.0;
  (void)buf.device_read();  // host newer: h2d
  EXPECT_EQ(ctx.counters().transfers, 1u);
  EXPECT_DOUBLE_EQ(ctx.counters().h2d_bytes, 8000.0);
  (void)buf.device_read();  // already synced
  EXPECT_EQ(ctx.counters().transfers, 1u);
  (void)buf.device_write();
  auto hr = buf.host_read();  // device newer: d2h
  EXPECT_EQ(ctx.counters().transfers, 2u);
  EXPECT_DOUBLE_EQ(hr[0], 42.0);
}

TEST(UnifiedBuffer, MigratesIn64KPages) {
  auto ctx = core::make_device();
  // 64Ki doubles = 512 KiB = 8 pages.
  core::UnifiedBuffer<double> buf(ctx, 64 * 1024);
  EXPECT_EQ(buf.pages(), 8u);
  buf.device_touch(0, buf.size());
  EXPECT_EQ(ctx.counters().transfers, 8u);
  EXPECT_DOUBLE_EQ(ctx.counters().h2d_bytes, 8.0 * 64 * 1024);
  // Touching one element from the host migrates exactly one page back.
  buf.host_touch(0, 1);
  EXPECT_EQ(ctx.counters().transfers, 9u);
  // Re-touching from the host is free.
  buf.host_touch(0, 1);
  EXPECT_EQ(ctx.counters().transfers, 9u);
}

TEST(MemoryPool, ReusesFreedBlocks) {
  core::MemoryPool pool;
  void* a = pool.allocate(1000);
  pool.deallocate(a, 1000);
  void* b = pool.allocate(900);  // same 1024-byte size class
  EXPECT_EQ(a, b);
  pool.deallocate(b, 900);
  EXPECT_EQ(pool.stats().backing_allocs, 1u);
  EXPECT_EQ(pool.stats().reuse_count, 1u);
  EXPECT_EQ(pool.stats().current_bytes, 0u);
  EXPECT_EQ(pool.stats().highwater_bytes, 1024u);
}

TEST(MemoryPool, PoolArrayConstructsAndDestroys) {
  core::MemoryPool pool;
  {
    core::PoolArray<double> arr(pool, 100);
    for (std::size_t i = 0; i < arr.size(); ++i) arr[i] = double(i);
    EXPECT_DOUBLE_EQ(arr[99], 99.0);
  }
  EXPECT_EQ(pool.stats().current_bytes, 0u);
}

TEST(Rng, Deterministic) {
  core::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformMoments) {
  core::Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 5e-3);
  EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMoments) {
  core::Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 1e-2);
  EXPECT_NEAR(sum2 / n, 1.0, 2e-2);
}

TEST(Rng, GammaMean) {
  core::Rng rng(13);
  const double shape = 3.0, scale = 2.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(shape, scale);
  EXPECT_NEAR(sum / n, shape * scale, 0.1);
}

TEST(Table, FormatsAligned) {
  core::Table t({"name", "value"});
  t.row({"alpha", core::Table::num(1.5, 2)});
  t.row({"b", "x"});
  const std::string s = t.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(ThreadPool, CoversRangeOnce) {
  core::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RepeatedDispatch) {
  core::ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int r = 0; r < 50; ++r) {
    pool.parallel_for(100, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<long>(hi - lo));
    });
  }
  EXPECT_EQ(total.load(), 5000);
}

TEST(ThreadPool, GuidedChunksCoverRangeOnce) {
  // The guided scheduler splits the range into ~4x chunks claimed by an
  // atomic counter; whatever the interleaving, each index runs exactly
  // once. The plain lambda takes the template fast path (no std::function
  // allocation); the wrapped call takes the erased one -- same contract.
  core::ThreadPool pool(4);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{3}, std::size_t{17}, std::size_t{1000},
        std::size_t{4099}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);

    std::function<void(std::size_t, std::size_t)> erased =
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
        };
    pool.parallel_for(n, erased);
    for (auto& h : hits) EXPECT_EQ(h.load(), 2);
  }
}

}  // namespace
