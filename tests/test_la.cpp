// Unit tests for the linear-algebra substrate: dense LU, CSR kernels,
// smoothers, and the Krylov solvers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.hpp"
#include "la/la.hpp"

namespace {

using namespace coe;

la::DenseMatrix random_spd(std::size_t n, core::Rng& rng) {
  la::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
    a(i, i) += double(n);  // diagonally dominant => SPD
  }
  return a;
}

TEST(Dense, MatvecIdentity) {
  auto id = la::DenseMatrix::identity(5);
  std::vector<double> x{1, 2, 3, 4, 5}, y(5);
  id.matvec(x, y);
  EXPECT_EQ(x, y);
}

TEST(Dense, LuSolvesRandomSystem) {
  core::Rng rng(42);
  const std::size_t n = 30;
  auto a = random_spd(n, rng);
  std::vector<double> x_true(n), b(n);
  for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
  a.matvec(x_true, b);
  la::LuFactor lu(a);
  ASSERT_TRUE(lu.ok());
  lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
}

TEST(Dense, LuDetectsSingular) {
  la::DenseMatrix a(3, 3);  // all zeros
  la::LuFactor lu(a);
  EXPECT_FALSE(lu.ok());
}

TEST(Dense, LuNeedsPivoting) {
  // Zero on the leading diagonal forces a row swap.
  la::DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  la::LuFactor lu(a);
  ASSERT_TRUE(lu.ok());
  std::vector<double> b{3.0, 7.0};
  lu.solve(b);
  EXPECT_NEAR(b[0], 7.0, 1e-14);
  EXPECT_NEAR(b[1], 3.0, 1e-14);
}

TEST(Dense, SolveManyHandlesBatches) {
  core::Rng rng(5);
  auto a = random_spd(8, rng);
  la::LuFactor lu(a);
  std::vector<double> rhs(8 * 3);
  std::vector<double> xs(8 * 3);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < 8; ++i) xs[s * 8 + i] = double(s + 1) * i;
    a.matvec(std::span<const double>(xs).subspan(s * 8, 8),
             std::span<double>(rhs).subspan(s * 8, 8));
  }
  lu.solve_many(rhs);
  for (std::size_t i = 0; i < rhs.size(); ++i) EXPECT_NEAR(rhs[i], xs[i], 1e-9);
}

TEST(Csr, FromTripletsSumsDuplicates) {
  auto m = la::CsrMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 5.0}, {0, 1, -1.0}});
  EXPECT_EQ(m.nnz(), 3u);
  auto d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
}

TEST(Csr, SpmvMatchesDense) {
  core::Rng rng(17);
  const std::size_t n = 40;
  std::vector<la::Triplet> trips;
  la::DenseMatrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.uniform() < 0.15) {
        const double v = rng.uniform(-1.0, 1.0);
        trips.push_back({i, j, v});
        dense(i, j) = v;
      }
    }
  }
  auto sparse = la::CsrMatrix::from_triplets(n, n, trips);
  std::vector<double> x(n), y1(n), y2(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  auto ctx = core::make_seq();
  sparse.spmv(ctx, x, y1);
  dense.matvec(x, y2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
  EXPECT_EQ(ctx.counters().launches, 1u);
  EXPECT_DOUBLE_EQ(ctx.counters().flops, 2.0 * double(sparse.nnz()));
}

TEST(Csr, TransposeRoundTrip) {
  auto a = la::poisson2d(7, 5);
  auto att = a.transpose().transpose();
  ASSERT_EQ(att.nnz(), a.nnz());
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    EXPECT_EQ(att.colind()[k], a.colind()[k]);
    EXPECT_DOUBLE_EQ(att.values()[k], a.values()[k]);
  }
}

TEST(Csr, TransposeMatchesSpmvTranspose) {
  auto a = la::poisson2d(6, 6);
  std::vector<double> x(a.rows()), y1(a.rows()), y2(a.rows());
  core::Rng rng(3);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  a.spmv_transpose(x, y1);
  auto at = a.transpose();
  auto ctx = core::make_seq();
  at.spmv(ctx, x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Csr, MultiplyMatchesDense) {
  core::Rng rng(23);
  const std::size_t n = 20;
  std::vector<la::Triplet> ta, tb;
  la::DenseMatrix da(n, n), db(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.uniform() < 0.2) {
        const double v = rng.uniform(-1.0, 1.0);
        ta.push_back({i, j, v});
        da(i, j) = v;
      }
      if (rng.uniform() < 0.2) {
        const double v = rng.uniform(-1.0, 1.0);
        tb.push_back({i, j, v});
        db(i, j) = v;
      }
    }
  }
  auto a = la::CsrMatrix::from_triplets(n, n, ta);
  auto b = la::CsrMatrix::from_triplets(n, n, tb);
  auto c = a.multiply(b);
  // Dense reference product.
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(n, 0.0);
    for (std::size_t l = 0; l < n; ++l) {
      for (std::size_t j = 0; j < n; ++j) row[j] += da(i, l) * db(l, j);
    }
    std::vector<double> crow(n, 0.0);
    for (std::size_t k = c.rowptr()[i]; k < c.rowptr()[i + 1]; ++k) {
      crow[c.colind()[k]] = c.values()[k];
    }
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(crow[j], row[j], 1e-12);
  }
}

TEST(Csr, Poisson2dStructure) {
  auto a = la::poisson2d(10, 10);
  EXPECT_EQ(a.rows(), 100u);
  // Interior rows have 5 entries; nnz = 5*n - 2*(nx + ny) boundary losses.
  EXPECT_EQ(a.nnz(), 5u * 100u - 2u * 20u);
  auto d = a.diagonal();
  for (double v : d) EXPECT_DOUBLE_EQ(v, 4.0);
}

class KrylovPoisson : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KrylovPoisson, CgConverges) {
  const std::size_t nx = GetParam();
  auto a = la::poisson2d(nx, nx);
  const std::size_t n = a.rows();
  std::vector<double> x_true(n), b(n), x(n, 0.0);
  core::Rng rng(7);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  auto ctx = core::make_seq();
  a.spmv(ctx, x_true, b);
  la::CsrOperator op(a);
  la::JacobiPreconditioner prec(a);
  auto res = la::cg(ctx, op, prec, b, x, {2000, 1e-10, 0.0});
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KrylovPoisson,
                         ::testing::Values(4, 8, 16, 24));

TEST(Krylov, CgZeroRhs) {
  auto a = la::poisson2d(5, 5);
  std::vector<double> b(a.rows(), 0.0), x(a.rows(), 0.0);
  auto ctx = core::make_seq();
  la::CsrOperator op(a);
  la::IdentityPreconditioner id;
  auto res = la::cg(ctx, op, id, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
}

TEST(Krylov, BicgstabSolvesNonsymmetric) {
  // Convection-diffusion style nonsymmetric matrix.
  const std::size_t n = 64;
  std::vector<la::Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({i, i, 4.0});
    if (i > 0) t.push_back({i, i - 1, -1.5});
    if (i + 1 < n) t.push_back({i, i + 1, -0.5});
  }
  auto a = la::CsrMatrix::from_triplets(n, n, t);
  std::vector<double> x_true(n), b(n), x(n, 0.0);
  core::Rng rng(9);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  auto ctx = core::make_seq();
  a.spmv(ctx, x_true, b);
  la::CsrOperator op(a);
  la::JacobiPreconditioner prec(a);
  auto res = la::bicgstab(ctx, op, prec, b, x, {500, 1e-12, 0.0});
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Krylov, GmresSolvesNonsymmetric) {
  const std::size_t n = 64;
  std::vector<la::Triplet> t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({i, i, 3.0});
    if (i > 0) t.push_back({i, i - 1, -2.0});
    if (i + 1 < n) t.push_back({i, i + 1, -0.3});
  }
  auto a = la::CsrMatrix::from_triplets(n, n, t);
  std::vector<double> x_true(n), b(n), x(n, 0.0);
  core::Rng rng(11);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  auto ctx = core::make_seq();
  a.spmv(ctx, x_true, b);
  la::CsrOperator op(a);
  la::JacobiPreconditioner prec(a);
  auto res = la::gmres(ctx, op, prec, b, x, 20, {500, 1e-12, 0.0});
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST(Smoothers, JacobiReducesResidual) {
  auto a = la::poisson2d(12, 12);
  const std::size_t n = a.rows();
  std::vector<double> b(n, 1.0), x(n, 0.0), scratch(n), r(n);
  auto diag = a.diagonal();
  auto ctx = core::make_seq();

  auto resid = [&]() {
    a.spmv(ctx, x, r);
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += (b[i] - r[i]) * (b[i] - r[i]);
    return std::sqrt(s);
  };
  const double r0 = resid();
  for (int s = 0; s < 10; ++s) {
    la::jacobi_sweep(ctx, a, diag, 0.8, b, x, scratch);
  }
  EXPECT_LT(resid(), 0.7 * r0);
}

TEST(Smoothers, GaussSeidelBeatsJacobiPerSweep) {
  auto a = la::poisson2d(12, 12);
  const std::size_t n = a.rows();
  std::vector<double> b(n, 1.0), xj(n, 0.0), xg(n, 0.0), scratch(n), r(n);
  auto diag = a.diagonal();
  auto ctx = core::make_seq();
  auto resid = [&](std::span<double> x) {
    a.spmv(ctx, x, r);
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += (b[i] - r[i]) * (b[i] - r[i]);
    return std::sqrt(s);
  };
  for (int s = 0; s < 5; ++s) {
    la::jacobi_sweep(ctx, a, diag, 0.8, b, xj, scratch);
    la::gauss_seidel_sweep(ctx, a, b, xg);
  }
  EXPECT_LT(resid(xg), resid(xj));
}

TEST(Smoothers, L1JacobiConvergesUnweighted) {
  auto a = la::poisson2d(10, 10);
  const std::size_t n = a.rows();
  std::vector<double> b(n, 1.0), x(n, 0.0), scratch(n), r(n);
  auto l1 = a.l1_row_sums();
  auto ctx = core::make_seq();
  for (int s = 0; s < 600; ++s) {
    la::l1_jacobi_sweep(ctx, a, l1, b, x, scratch);
  }
  a.spmv(ctx, x, r);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-3);
}

TEST(Abft, ChecksumVectorIsExactColumnSums) {
  // w = A^T e on a small asymmetric rectangular matrix, checked against
  // hand-computed column sums (exact: each column sum is a short sum of
  // representable values).
  auto a = la::CsrMatrix::from_triplets(
      3, 4,
      {{0, 0, 2.0}, {0, 2, -1.5}, {1, 1, 4.0}, {1, 2, 0.5}, {2, 0, 1.0},
       {2, 3, -3.0}});
  la::AbftCsrOperator op(a);
  auto w = op.checksum();
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 3.0);   // 2 + 1
  EXPECT_DOUBLE_EQ(w[1], 4.0);
  EXPECT_DOUBLE_EQ(w[2], -1.0);  // -1.5 + 0.5
  EXPECT_DOUBLE_EQ(w[3], -3.0);

  // Clean applies satisfy the Huang–Abraham identity within tolerance.
  auto ctx = core::make_seq();
  std::vector<double> x{1.0, -2.0, 3.0, 0.25}, y(3);
  op.apply(ctx, x, y);
  EXPECT_EQ(op.checks(), 1u);
  EXPECT_EQ(op.trips(), 0u);
  EXPECT_LT(op.last_relative_error(), 1e-12);
}

TEST(VectorOps, BasicIdentities) {
  auto ctx = core::make_seq();
  std::vector<double> x{1, 2, 3}, y{4, 5, 6}, z(3);
  EXPECT_DOUBLE_EQ(la::dot(ctx, x, y), 32.0);
  EXPECT_DOUBLE_EQ(la::norm2(ctx, x), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(la::norm_inf(ctx, y), 6.0);
  la::axpby(ctx, 2.0, x, -1.0, y, z);
  EXPECT_DOUBLE_EQ(z[0], -2.0);
  EXPECT_DOUBLE_EQ(z[2], 0.0);
  la::fill(ctx, z, 7.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
}

}  // namespace
