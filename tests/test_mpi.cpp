// Tests for the message-passing substrate: point-to-point semantics,
// collectives, traffic accounting, and a real distributed 1D wave solve
// with halo exchange that must match the single-rank run exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "mpi/comm.hpp"
#include "obs/metrics.hpp"
#include "resil/fault.hpp"
#include "stencil/distributed.hpp"
#include "stencil/wave.hpp"

namespace {

using namespace coe;

TEST(Mpi, RingPassesTokenOnce) {
  const int ranks = 5;
  std::vector<double> seen(ranks, -1.0);
  auto stats = mpi::run(ranks, [&](mpi::Communicator& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    if (comm.rank() == 0) {
      comm.send(next, 1, {42.0});
      seen[0] = comm.recv(prev, 1)[0];
    } else {
      const double token = comm.recv(prev, 1)[0];
      seen[static_cast<std::size_t>(comm.rank())] = token;
      comm.send(next, 1, {token + 1.0});
    }
  });
  // Token increments around the ring: rank r sees 42 + (r - 1).
  for (int r = 1; r < ranks; ++r) {
    EXPECT_DOUBLE_EQ(seen[static_cast<std::size_t>(r)], 42.0 + (r - 1));
  }
  EXPECT_DOUBLE_EQ(seen[0], 42.0 + (ranks - 1));
  EXPECT_EQ(stats.messages, static_cast<std::size_t>(ranks));
}

TEST(Mpi, TaggedMessagesDoNotCross) {
  auto stats = mpi::run(2, [&](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/7, {7.0});
      comm.send(1, /*tag=*/9, {9.0});
    } else {
      // Receive in the opposite order of sending: tags must select.
      EXPECT_DOUBLE_EQ(comm.recv(0, 9)[0], 9.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 7)[0], 7.0);
    }
  });
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_DOUBLE_EQ(stats.bytes, 16.0);
}

TEST(Mpi, AllreduceSumsVectors) {
  const int ranks = 7;
  auto stats = mpi::run(ranks, [&](mpi::Communicator& comm) {
    std::vector<double> v{double(comm.rank()), 1.0};
    comm.allreduce_sum(v);
    EXPECT_DOUBLE_EQ(v[0], double(ranks) * double(ranks - 1) / 2.0);
    EXPECT_DOUBLE_EQ(v[1], double(ranks));
    // Repeated reductions stay consistent (epoch handling).
    for (int it = 0; it < 20; ++it) {
      const double s = comm.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, double(ranks));
    }
  });
  EXPECT_EQ(stats.allreduces, 21u);
}

TEST(Mpi, AllreduceMax) {
  mpi::run(6, [&](mpi::Communicator& comm) {
    const double m = comm.allreduce_max(double(comm.rank() * comm.rank()));
    EXPECT_DOUBLE_EQ(m, 25.0);
  });
}

TEST(Mpi, AllreduceMaxNativeMatchesLegacy) {
  // The native single-pass max must be value-identical to the retired
  // gather/broadcast-through-rank-0 path, and cost zero messages where the
  // legacy path paid 2*(P-1).
  const int ranks = 5;
  auto stats = mpi::run(ranks, [&](mpi::Communicator& comm) {
    const double mine = std::sin(double(comm.rank() + 1)) * 1e3;
    const double native = comm.allreduce_max(mine);
    const double legacy = comm.allreduce_max_legacy(mine);
    EXPECT_EQ(native, legacy);  // bitwise
    std::vector<double> v{mine, -mine};
    comm.allreduce_max(v);
    EXPECT_EQ(v[0], native);
  });
  // All messages came from the legacy path's two phases.
  EXPECT_EQ(stats.messages, 2u * (ranks - 1));
}

TEST(Mpi, BarrierSynchronizes) {
  std::atomic<int> before{0}, after_min{100};
  mpi::run(4, [&](mpi::Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    // Everyone incremented before anyone proceeds.
    after_min.store(std::min(after_min.load(), before.load()));
    (void)comm;
  });
  EXPECT_EQ(after_min.load(), 4);
}

TEST(Mpi, ExceptionsPropagate) {
  EXPECT_THROW(mpi::run(3,
                        [](mpi::Communicator& comm) {
                          comm.barrier();
                          if (comm.rank() == 1) {
                            throw std::runtime_error("rank 1 failed");
                          }
                        }),
               std::runtime_error);
}

TEST(Mpi, DistributedWaveMatchesSingleRank) {
  // 1D second-order wave equation split across 4 ranks with 1-cell halo
  // exchange each step; must match the serial solve exactly.
  const std::size_t n = 64;
  const int steps = 40;
  const double c2dt2 = 0.2;

  auto serial = [&] {
    std::vector<double> u(n), up(n), un(n);
    for (std::size_t i = 0; i < n; ++i) {
      u[i] = up[i] = std::sin(2.0 * M_PI * double(i) / double(n));
    }
    for (int s = 0; s < steps; ++s) {
      for (std::size_t i = 0; i < n; ++i) {
        const double l = u[(i + n - 1) % n], r = u[(i + 1) % n];
        un[i] = 2.0 * u[i] - up[i] + c2dt2 * (l - 2.0 * u[i] + r);
      }
      up = u;
      u = un;
    }
    return u;
  }();

  const int ranks = 4;
  const std::size_t local = n / ranks;
  std::vector<double> distributed(n, 0.0);
  mpi::run(ranks, [&](mpi::Communicator& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const int left = (comm.rank() + ranks - 1) % ranks;
    const int right = (comm.rank() + 1) % ranks;
    std::vector<double> u(local + 2), up(local + 2), un(local + 2);
    for (std::size_t i = 0; i < local; ++i) {
      const std::size_t gi = r * local + i;
      u[i + 1] = up[i + 1] =
          std::sin(2.0 * M_PI * double(gi) / double(n));
    }
    for (int s = 0; s < steps; ++s) {
      // Halo exchange (tag by direction).
      comm.send(left, 10, {u[1]});
      comm.send(right, 11, {u[local]});
      u[local + 1] = comm.recv(right, 10)[0];
      u[0] = comm.recv(left, 11)[0];
      for (std::size_t i = 1; i <= local; ++i) {
        un[i] = 2.0 * u[i] - up[i] +
                c2dt2 * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
      }
      up = u;
      u = un;
    }
    for (std::size_t i = 0; i < local; ++i) {
      distributed[r * local + i] = u[i + 1];
    }
  });

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(distributed[i], serial[i], 1e-13) << "cell " << i;
  }
}

TEST(Mpi, TrafficPricedOnClusterModel) {
  auto stats = mpi::run(4, [&](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<double>(1000, 1.0));
    } else if (comm.rank() == 1) {
      (void)comm.recv(0, 0);
    }
  });
  const auto net = hsim::clusters::sierra(4);
  const double t = stats.modeled_time(net);
  EXPECT_NEAR(t, net.alpha + net.beta * 8000.0, 1e-12);
}


TEST(Mpi, Distributed3dWaveMatchesSerialSolver) {
  // The slab-decomposed 4th-order solver must match the serial WaveSolver
  // to rounding (same arithmetic per point, halo values identical).
  stencil::DistributedWaveConfig cfg;
  cfg.nx = 16;
  cfg.ny = 12;
  cfg.nz = 12;
  cfg.steps = 15;
  auto u0 = [](double x, double y, double z) {
    return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
  };
  auto dist = stencil::distributed_wave_run(4, cfg, u0);
  EXPECT_GT(dist.traffic.messages, 0u);

  auto ctx = core::make_seq();
  stencil::WaveSolver serial(ctx, cfg.nx, cfg.ny, cfg.nz, cfg.length,
                             cfg.c, {});
  // WaveSolver's grid spacing uses nx; match configs so h agrees.
  serial.set_initial(u0, [](double, double, double) { return 0.0; },
                     dist.dt);
  for (int s = 0; s < cfg.steps; ++s) serial.step(dist.dt);
  for (std::size_t i = 0; i < cfg.nx; ++i) {
    for (std::size_t j = 0; j < cfg.ny; ++j) {
      for (std::size_t k = 0; k < cfg.nz; ++k) {
        EXPECT_NEAR(dist.field[(i * cfg.ny + j) * cfg.nz + k],
                    serial.at(i, j, k), 1e-12)
            << i << "," << j << "," << k;
      }
    }
  }
}

TEST(MpiFailure, MismatchedTagRecvTimesOutInsteadOfHanging) {
  // No rank ever sends tag 99: the recv must surface as CommTimeout within
  // the configured deadline, never an indefinite hang.
  mpi::RunOptions opts;
  opts.timeout_seconds = 0.2;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(mpi::run(2, opts,
                        [](mpi::Communicator& comm) {
                          if (comm.rank() == 0) comm.send(1, 1, {1.0});
                          if (comm.rank() == 1) (void)comm.recv(0, 99);
                        }),
               mpi::CommTimeout);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 10.0);
}

TEST(MpiFailure, DeadlineRetriesBackOffThenSurfaceTimeout) {
  // A recv with no matching send exhausts every backoff retry before the
  // CommTimeout surfaces, and the retries are visible in the metrics.
  mpi::RunOptions opts;
  opts.timeout_seconds = 0.05;
  opts.max_retries = 3;
  opts.retry_backoff_seconds = 0.02;
  obs::MetricsRegistry metrics;
  opts.metrics = &metrics;
  EXPECT_THROW(mpi::run(2, opts,
                        [](mpi::Communicator& comm) {
                          if (comm.rank() == 1) (void)comm.recv(0, 77);
                        }),
               mpi::CommTimeout);
  EXPECT_DOUBLE_EQ(metrics.counter("mpi.retries"), 3.0);
  EXPECT_DOUBLE_EQ(metrics.counter("mpi.timeouts"), 1.0);
}

TEST(MpiFailure, LateSenderIsAbsorbedByRetries) {
  // The sender shows up well after the receiver's first deadline: the
  // exponential backoff keeps re-arming the wait until the message lands,
  // so the operation succeeds instead of raising CommTimeout.
  mpi::RunOptions opts;
  opts.timeout_seconds = 0.02;
  opts.max_retries = 10;
  opts.retry_backoff_seconds = 0.02;
  obs::MetricsRegistry metrics;
  opts.metrics = &metrics;
  double got = 0.0;
  auto stats = mpi::run(2, opts, [&](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      comm.send(1, 5, {9.25});
    } else {
      got = comm.recv(0, 5)[0];
    }
  });
  EXPECT_DOUBLE_EQ(got, 9.25);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_DOUBLE_EQ(metrics.counter("mpi.retries"),
                   static_cast<double>(stats.retries));
  EXPECT_DOUBLE_EQ(metrics.counter("mpi.timeouts"), 0.0);
}

TEST(MpiFailure, InjectedRankFailurePropagatesOutOfRun) {
  // A hook with a tiny op budget kills some rank inside its first few
  // communicator operations; run() must rethrow the RankFailure.
  mpi::RunOptions opts;
  opts.timeout_seconds = 5.0;
  opts.fault_hook = resil::make_rank_fault_hook(4, /*mean_ops=*/2.0,
                                                /*seed=*/11);
  try {
    mpi::run(4, opts, [](mpi::Communicator& comm) {
      for (int it = 0; it < 50; ++it) {
        comm.barrier();
        (void)comm.allreduce_sum(1.0);
      }
    });
    FAIL() << "expected resil::RankFailure";
  } catch (const resil::RankFailure& e) {
    EXPECT_GE(e.rank, 0);
    EXPECT_LT(e.rank, 4);
  }
}

TEST(MpiFailure, SurvivorsUnblockWhenPeerDiesBeforeBarrier) {
  // Rank 1 dies before entering the barrier. Survivors must wake with
  // PeerFailure immediately (well before the 30 s deadline), and run()
  // must rethrow rank 1's original error, not the secondary failures.
  std::atomic<int> peer_failures{0};
  const auto t0 = std::chrono::steady_clock::now();
  try {
    mpi::run(4, [&](mpi::Communicator& comm) {
      if (comm.rank() == 1) throw std::runtime_error("boom");
      try {
        comm.barrier();
      } catch (const mpi::PeerFailure&) {
        peer_failures.fetch_add(1);
        throw;
      }
    });
    FAIL() << "expected the original error to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(peer_failures.load(), 3);
  EXPECT_LT(elapsed, 10.0);
}

TEST(MpiFailure, GenerousOpBudgetLeavesRunClean) {
  // Draws beyond max_ops never fire: with a huge mean and a tight cap the
  // hook is installed but the run completes normally.
  mpi::RunOptions opts;
  opts.fault_hook =
      resil::make_rank_fault_hook(3, /*mean_ops=*/1e9, /*seed=*/1,
                                  /*max_ops=*/1e6);
  auto stats = mpi::run(3, opts, [](mpi::Communicator& comm) {
    comm.barrier();
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(1.0), 3.0);
  });
  EXPECT_EQ(stats.barriers, 1u);
}

TEST(Mpi, DistributedWaveRankCountInvariant) {
  // 1, 2, and 4 ranks must all produce the same field.
  stencil::DistributedWaveConfig cfg;
  cfg.nx = 16;
  cfg.ny = 8;
  cfg.nz = 8;
  cfg.steps = 10;
  auto u0 = [](double x, double y, double z) {
    return std::sin(M_PI * x) * std::sin(2.0 * M_PI * y) *
           std::sin(M_PI * z);
  };
  auto r1 = stencil::distributed_wave_run(1, cfg, u0);
  auto r2 = stencil::distributed_wave_run(2, cfg, u0);
  auto r4 = stencil::distributed_wave_run(4, cfg, u0);
  EXPECT_EQ(r1.traffic.messages, 0u);
  for (std::size_t i = 0; i < r1.field.size(); ++i) {
    EXPECT_NEAR(r1.field[i], r2.field[i], 1e-13);
    EXPECT_NEAR(r1.field[i], r4.field[i], 1e-13);
  }
}

}  // namespace
