// Property-based and parameterized sweeps across modules: invariants that
// must hold for whole families of inputs, not just single examples.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "amg/amg.hpp"
#include "beamline/fft.hpp"
#include "core/coe.hpp"
#include "fem/fem.hpp"
#include "kinetics/solver.hpp"
#include "md/md.hpp"
#include "ml/lbann.hpp"
#include "reaction/rational.hpp"
#include "sched/scheduler.hpp"
#include "topopt/simp.hpp"

namespace {

using namespace coe;

// ---------------------------------------------------------------- machine

TEST(Property_CostModel, KernelTimeMonotoneInWork) {
  hsim::CostModel cm(hsim::machines::v100());
  double prev = 0.0;
  for (double f = 1e6; f < 1e13; f *= 10.0) {
    const double t = cm.kernel_time({f, f / 2.0});
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Property_CostModel, PredictDominatesComponents) {
  hsim::CostModel cm(hsim::machines::p100());
  hsim::Counters c;
  c.flops = 1e11;
  c.bytes = 1e10;
  c.launches = 50;
  c.h2d_bytes = 1e8;
  c.transfers = 10;
  const double t = cm.predict(c);
  EXPECT_GE(t, c.flops / cm.machine().flops());
  EXPECT_GE(t, c.bytes / cm.machine().bandwidth());
  EXPECT_GE(t, 50.0 * cm.machine().launch_overhead);
}

class ClusterSizes : public ::testing::TestWithParam<int> {};

TEST_P(ClusterSizes, CollectiveMonotoneInBytes) {
  const int ranks = GetParam();
  const auto net = hsim::clusters::sierra(ranks);
  double prev = -1.0;
  for (std::size_t b = 1024; b <= (1u << 26); b *= 8) {
    const double t = net.allreduce(b, ranks);
    EXPECT_GT(t, prev);
    prev = t;
    EXPECT_GE(net.alltoall(b, ranks), net.p2p(b) - 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, ClusterSizes,
                         ::testing::Values(2, 16, 128, 1024));

// ------------------------------------------------------------------- fft

class FftShift : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftShift, CircularShiftTheorem) {
  // FFT(shift(x, s))[k] = FFT(x)[k] * exp(-2 pi i s k / n).
  const std::size_t n = GetParam();
  core::Rng rng(n);
  std::vector<beamline::cplx> x(n);
  for (auto& v : x) v = beamline::cplx(rng.uniform(), rng.uniform());
  const std::size_t s = n / 3 + 1;
  std::vector<beamline::cplx> shifted(n);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = x[(i + s) % n];
  auto ctx = core::make_seq();
  auto fx = x;
  beamline::fft(ctx, fx, false);
  beamline::fft(ctx, shifted, false);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = 2.0 * M_PI * double(s) * double(k) / double(n);
    const beamline::cplx tw(std::cos(ang), std::sin(ang));
    const auto expect = fx[k] * tw;
    EXPECT_NEAR(shifted[k].real(), expect.real(), 1e-9);
    EXPECT_NEAR(shifted[k].imag(), expect.imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftShift, ::testing::Values(16, 27, 64, 60));

// ---------------------------------------------------------------- struct MG

class StructStencils
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(StructStencils, AnisotropicConvergence) {
  // Mildly anisotropic constant-coefficient operators still converge
  // (point-Jacobi smoothing tolerates modest anisotropy).
  const auto [ax, ay] = GetParam();
  amg::StructStencil5 st;
  st.west = st.east = -ax;
  st.south = st.north = -ay;
  st.center = 2.0 * (ax + ay);
  amg::StructSolver solver(31, 31, st);
  std::vector<double> f(31 * 31, 1.0), u(31 * 31, 0.0);
  auto ctx = core::make_seq();
  const double r0 = solver.residual_norm(ctx, f, u);
  solver.solve(ctx, f, u, 1e-8, 60);
  EXPECT_LT(solver.residual_norm(ctx, f, u), 1e-7 * r0);
}

INSTANTIATE_TEST_SUITE_P(Coefficients, StructStencils,
                         ::testing::Values(std::make_pair(1.0, 1.0),
                                           std::make_pair(1.0, 0.5),
                                           std::make_pair(0.7, 1.0)));

// -------------------------------------------------------------------- fem

TEST(Property_Elliptic, OperatorIsSymmetric) {
  // x' A y == y' A x for the constrained PA operator (it must stay SPD for
  // CG to be valid).
  fem::TensorMesh2D mesh(5, 4, 3);
  fem::EllipticOperator op(mesh, fem::Assembly::Partial, 0.4, 1.3);
  op.set_kappa([](double x, double y) { return 1.0 + x * y; });
  core::Rng rng(3);
  auto ctx = core::make_seq();
  const std::size_t n = mesh.num_dofs();
  std::vector<double> x(n), y(n), ax(n), ay(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
  }
  // Symmetry holds on the interior block; zero the boundary entries.
  for (std::size_t b : mesh.boundary_dofs()) x[b] = y[b] = 0.0;
  op.apply(ctx, x, ax);
  op.apply(ctx, y, ay);
  double xay = 0.0, yax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    xay += x[i] * ay[i];
    yax += y[i] * ax[i];
  }
  EXPECT_NEAR(xay, yax, 1e-10 * std::abs(xay));
}

class FemOrders : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FemOrders, QuadratureExactForOperatorOrder) {
  // The mass bilinear form of u = x^p against v = 1 integrates x^p over
  // the square exactly at any supported order.
  const std::size_t p = GetParam();
  fem::TensorMesh2D mesh(2, 2, p);
  fem::EllipticOperator mass(mesh, fem::Assembly::Full, 1.0, 0.0);
  // Build u = (x)^p nodal; it is in the FE space, so M u against the
  // all-ones interior function integrates it exactly up to Dirichlet
  // column elimination -- avoid that by checking the element-level sum:
  // sum of ALL entries of the unconstrained element mass matrices = area.
  // Instead verify via PA on an interior bump at higher quadrature: the
  // form value must match for Full and Partial (independent quadrature
  // paths both exact).
  fem::EllipticOperator pa(mesh, fem::Assembly::Partial, 1.0, 0.0);
  core::Rng rng(p);
  std::vector<double> u(mesh.num_dofs());
  for (auto& v : u) v = rng.uniform(0.0, 1.0);
  for (std::size_t b : mesh.boundary_dofs()) u[b] = 0.0;
  auto ctx = core::make_seq();
  std::vector<double> y1(u.size()), y2(u.size());
  mass.apply(ctx, u, y1);
  pa.apply(ctx, u, y2);
  double q1 = 0.0, q2 = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    q1 += u[i] * y1[i];
    q2 += u[i] * y2[i];
  }
  EXPECT_NEAR(q1, q2, 1e-12 * std::abs(q1));
  EXPECT_GT(q1, 0.0);  // mass form is positive definite
}

INSTANTIATE_TEST_SUITE_P(Orders, FemOrders, ::testing::Values(1, 2, 3, 5, 7));

// --------------------------------------------------------------------- md

template <typename Potential>
void check_force_consistency(const Potential& pot, double rlo, double rhi) {
  for (double r = rlo; r <= rhi; r += (rhi - rlo) / 7.0) {
    const double h = 1e-6;
    const double dudr =
        (pot((r + h) * (r + h)).energy - pot((r - h) * (r - h)).energy) /
        (2.0 * h);
    EXPECT_NEAR(pot(r * r).fr * r, -dudr, 1e-4 * std::max(1.0, std::abs(dudr)))
        << "r=" << r;
  }
}

TEST(Property_Md, AllPotentialsForceConsistent) {
  check_force_consistency(md::LennardJones(1.0, 1.0, 3.0), 0.9, 2.8);
  check_force_consistency(md::Exp6(800.0, 4.0, 1.0, 3.0), 0.9, 2.8);
  check_force_consistency(md::MartiniPair(1.0, 1.0, 0.5, 3.0), 0.9, 2.8);
}

class MdSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MdSeeds, NveDriftBoundedAcrossSeeds) {
  core::Rng rng(GetParam());
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 4, 0.7, 0.8, rng);
  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  md::SimConfig cfg;
  cfg.dt = 0.002;
  md::Simulation<md::LennardJones> sim(gpu, cpu, std::move(p), box,
                                       md::LennardJones(1.0, 1.0, 2.5), cfg,
                                       0.4);
  const double e0 = sim.measure().total();
  for (int s = 0; s < 100; ++s) sim.step();
  EXPECT_LT(std::abs(sim.measure().total() - e0) / std::abs(e0), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MdSeeds, ::testing::Values(1, 2, 3, 4, 5));

// --------------------------------------------------------------- kinetics

class KineticsTemps : public ::testing::TestWithParam<double> {};

TEST_P(KineticsTemps, HotterPlasmaMoreExcitation) {
  const double te = GetParam();
  auto m = kinetics::make_model(16, 0.5, 3);
  for (auto& t : m.transitions) t.radiative = false;  // LTE limit
  auto cold = kinetics::solve_zone(m, {te, 1.0},
                                   kinetics::SolveMethod::DenseDirect);
  auto hot = kinetics::solve_zone(m, {te * 1.5, 1.0},
                                  kinetics::SolveMethod::DenseDirect);
  // Ground-state share strictly decreases with temperature.
  EXPECT_LT(hot[0], cold[0]);
  // Both are valid distributions.
  EXPECT_NEAR(std::accumulate(cold.begin(), cold.end(), 0.0), 1.0, 1e-9);
  EXPECT_NEAR(std::accumulate(hot.begin(), hot.end(), 0.0), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, KineticsTemps,
                         ::testing::Values(0.2, 0.5, 1.0, 2.0));

// ---------------------------------------------------------------- rational

class FitDegrees : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FitDegrees, ErrorDecreasesWithDegree) {
  auto f = [](double x) { return std::exp(-x); };  // not exactly rational
  const std::size_t np = GetParam();
  reaction::RationalFit lo(f, -4.0, 4.0, np, 2);
  reaction::RationalFit hi(f, -4.0, 4.0, np + 4, 2);
  EXPECT_LE(hi.max_relative_error(f),
            lo.max_relative_error(f) * 1.01 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Degrees, FitDegrees, ::testing::Values(2, 4, 6));

// ------------------------------------------------------------------ sched

class SchedSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedSeeds, SjfNeverWorseThanFcfsOnBatchMeanWait) {
  auto jobs = sched::make_workload({150, 25.0, 1.0, 0.0, 0.0, GetParam()});
  sched::Simulator fcfs({4, sched::Policy::Fcfs, 0.0, 0});
  sched::Simulator sjf({4, sched::Policy::Sjf, 0.0, 0});
  EXPECT_LE(sjf.run(jobs).mean_wait, fcfs.run(jobs).mean_wait + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedSeeds,
                         ::testing::Values(1, 7, 13, 21, 42));

TEST(Property_Sched, WorkConservedAcrossPolicies) {
  auto jobs = sched::make_workload({300, 15.0, 1.2, 0.2, 0.0, 9});
  double total = 0.0;
  for (const auto& j : jobs) total += j.duration;
  for (auto p : {sched::Policy::Fcfs, sched::Policy::Sjf,
                 sched::Policy::SjfQuota}) {
    sched::Simulator sim({6, p, 0.0, 0});
    auto m = sim.run(jobs);
    // utilization * gpus * makespan == total work, for every policy.
    EXPECT_NEAR(m.utilization * 6.0 * m.makespan, total, 1e-6 * total);
  }
}

// ----------------------------------------------------------------- topopt

class VolFracs : public ::testing::TestWithParam<double> {};

TEST_P(VolFracs, VolumeConstraintRespected) {
  auto ctx = core::make_seq();
  topopt::TopOptConfig cfg;
  cfg.nelx = 16;
  cfg.nely = 8;
  cfg.volfrac = GetParam();
  topopt::TopOpt opt(ctx, cfg);
  auto infos = opt.run(8);
  for (const auto& it : infos) {
    EXPECT_NEAR(it.volume, cfg.volfrac, 0.02);
  }
  // More material -> stiffer structure (lower compliance).
}

INSTANTIATE_TEST_SUITE_P(Fractions, VolFracs,
                         ::testing::Values(0.25, 0.4, 0.6));

TEST(Property_TopOpt, MoreMaterialLowerCompliance) {
  auto run = [](double vf) {
    auto ctx = core::make_seq();
    topopt::TopOptConfig cfg;
    cfg.nelx = 16;
    cfg.nely = 8;
    cfg.volfrac = vf;
    topopt::TopOpt opt(ctx, cfg);
    return opt.run(15).back().compliance;
  };
  EXPECT_GT(run(0.25), run(0.55));
}

// ------------------------------------------------------------------ lbann

TEST(Property_Lbann, SpeedupMonotoneThenRollsOver) {
  ml::LbannModel m;
  const auto gpu = hsim::machines::v100();
  double best = 0.0;
  std::size_t best_p = 0;
  for (std::size_t p = 2; p <= 64; p *= 2) {
    const double s = ml::sample_speedup(m, gpu, p);
    if (s > best) {
      best = s;
      best_p = p;
    }
  }
  // There is an interior optimum (halo traffic eventually wins).
  EXPECT_GT(best_p, 2u);
  EXPECT_LT(best_p, 64u);
  EXPECT_LT(ml::sample_speedup(m, gpu, 64), best);
}

// ----------------------------------------------------------- memory pool

TEST(Property_Pool, HighwaterNeverDecreasesAndBytesBalance) {
  core::MemoryPool pool;
  core::Rng rng(5);
  std::vector<std::pair<void*, std::size_t>> live;
  std::size_t hw = 0;
  for (int it = 0; it < 500; ++it) {
    if (live.empty() || rng.uniform() < 0.6) {
      const std::size_t bytes = 1 + rng.uniform_int(4096);
      live.emplace_back(pool.allocate(bytes), bytes);
    } else {
      const std::size_t k = rng.uniform_int(live.size());
      pool.deallocate(live[k].first, live[k].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    }
    EXPECT_GE(pool.stats().highwater_bytes, hw);
    hw = pool.stats().highwater_bytes;
    EXPECT_GE(pool.stats().highwater_bytes, pool.stats().current_bytes);
  }
  for (auto& [p, b] : live) pool.deallocate(p, b);
  EXPECT_EQ(pool.stats().current_bytes, 0u);
}

// ------------------------------------------------------------------ exec

class BackendPair : public ::testing::TestWithParam<core::Backend> {};

TEST_P(BackendPair, ReductionsMatchSerialSum) {
  core::ExecContext ctx(GetParam());
  core::Rng rng(7);
  std::vector<double> v(5000);
  double expect = 0.0;
  for (auto& x : v) {
    x = rng.uniform(-1.0, 1.0);
    expect += x * x;
  }
  const double got =
      ctx.reduce_sum(v.size(), {}, [&](std::size_t i) { return v[i] * v[i]; });
  EXPECT_NEAR(got, expect, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendPair,
                         ::testing::Values(core::Backend::Seq,
                                           core::Backend::Threads,
                                           core::Backend::Device));

TEST(Property_Exec, ShadowModelsTrackPrimary) {
  auto gpu = core::make_device(hsim::machines::v100());
  const std::size_t same = gpu.add_shadow(hsim::machines::v100());
  const std::size_t slower = gpu.add_shadow(hsim::machines::k40());
  gpu.forall(10000, {10.0, 80.0}, [](std::size_t) {});
  gpu.record_transfer(1e6, true);
  EXPECT_NEAR(gpu.shadow_time(same), gpu.simulated_time(),
              1e-12 * gpu.simulated_time());
  EXPECT_GT(gpu.shadow_time(slower), gpu.simulated_time());
}

}  // namespace
