// Tests for the graph module: RMAT properties, CSR construction, BFS
// correctness across modes (validated Graph500-style), and the Table 2
// capacity/rate model.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"

namespace {

using namespace coe;

graph::Graph make_test_graph(std::size_t scale, std::uint64_t seed) {
  core::Rng rng(seed);
  auto edges = graph::rmat_edges(scale, 16, rng);
  return graph::Graph(std::size_t{1} << scale, edges);
}

TEST(Rmat, EdgeCountAndRange) {
  core::Rng rng(3);
  auto edges = graph::rmat_edges(10, 16, rng);
  EXPECT_EQ(edges.size(), 16u * 1024u);
  for (const auto& [u, v] : edges) {
    EXPECT_LT(u, 1024u);
    EXPECT_LT(v, 1024u);
  }
}

TEST(Rmat, SkewedDegreeDistribution) {
  auto g = make_test_graph(12, 5);
  std::size_t max_deg = 0;
  double sum_deg = 0.0;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
    sum_deg += static_cast<double>(g.degree(v));
  }
  const double mean = sum_deg / static_cast<double>(g.num_vertices());
  // Power-law-ish: hub degree far above the mean.
  EXPECT_GT(static_cast<double>(max_deg), 20.0 * mean);
}

TEST(Graph, CsrRoundTrip) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 2}, {2, 0}, {3, 3}};  // self loop dropped
  graph::Graph g(4, edges);
  EXPECT_EQ(g.num_directed_edges(), 6u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

class BfsModes : public ::testing::TestWithParam<graph::BfsMode> {};

TEST_P(BfsModes, ValidParentTreeOnRmat) {
  auto g = make_test_graph(11, 7);
  auto ctx = core::make_seq();
  // Pick a root with nonzero degree.
  std::uint32_t root = 0;
  while (g.degree(root) == 0) ++root;
  auto r = graph::bfs(ctx, g, root, GetParam());
  EXPECT_TRUE(graph::validate_bfs(g, root, r));
  EXPECT_GT(r.reached, g.num_vertices() / 4);
  EXPECT_GT(r.edges_traversed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, BfsModes,
                         ::testing::Values(graph::BfsMode::TopDown,
                                           graph::BfsMode::BottomUp,
                                           graph::BfsMode::Hybrid));

TEST(Bfs, ModesAgreeOnReachability) {
  auto g = make_test_graph(10, 11);
  auto ctx = core::make_seq();
  std::uint32_t root = 0;
  while (g.degree(root) == 0) ++root;
  auto td = graph::bfs(ctx, g, root, graph::BfsMode::TopDown);
  auto bu = graph::bfs(ctx, g, root, graph::BfsMode::BottomUp);
  auto hy = graph::bfs(ctx, g, root, graph::BfsMode::Hybrid);
  EXPECT_EQ(td.reached, bu.reached);
  EXPECT_EQ(td.reached, hy.reached);
  EXPECT_EQ(td.levels, bu.levels);
}

TEST(Bfs, HybridTraversesFewerEdgesThanTopDown) {
  // Direction optimization pays off on low-diameter RMAT graphs.
  auto g = make_test_graph(12, 13);
  auto ctx = core::make_seq();
  std::uint32_t root = 0;
  while (g.degree(root) == 0) ++root;
  auto td = graph::bfs(ctx, g, root, graph::BfsMode::TopDown);
  auto hy = graph::bfs(ctx, g, root, graph::BfsMode::Hybrid);
  EXPECT_LT(hy.edges_traversed, td.edges_traversed);
}

TEST(Bfs, DisconnectedVerticesUnreached) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{{0, 1}, {1, 2}};
  graph::Graph g(5, edges);
  auto ctx = core::make_seq();
  auto r = graph::bfs(ctx, g, 0);
  EXPECT_EQ(r.reached, 3u);
  EXPECT_EQ(r.parent[3], -1);
  EXPECT_EQ(r.parent[4], -1);
  EXPECT_TRUE(graph::validate_bfs(g, 0, r));
}

TEST(ScaleModel, CapacityGrowsWithStorage) {
  graph::GraphSystem small{"small", hsim::machines::cpu_2011(),
                           hsim::clusters::ethernet(1), 1,
                           64.0 * double(1ull << 30), 0.0, 1e9};
  graph::GraphSystem big = small;
  big.node_dram_bytes *= 64.0;
  auto ps = graph::scale_model(small, 20.0, 24.0);
  auto pb = graph::scale_model(big, 20.0, 24.0);
  EXPECT_EQ(pb.max_scale, ps.max_scale + 6);  // 64x storage = +6 scale
}

TEST(ScaleModel, FlashEnablesLargerScaleButThrottlesRate) {
  graph::GraphSystem dram_only{"dram", hsim::machines::cpu_2014(),
                               hsim::clusters::ethernet(1), 1,
                               128.0 * double(1ull << 30), 0.0, 1e9};
  graph::GraphSystem with_flash = dram_only;
  with_flash.node_flash_bytes = 16.0 * 1024.0 * double(1ull << 30);
  auto pd = graph::scale_model(dram_only, 20.0, 24.0);
  auto pf = graph::scale_model(with_flash, 20.0, 24.0);
  EXPECT_GT(pf.max_scale, pd.max_scale);  // NVMe enables larger graphs...
  EXPECT_LT(pf.gteps, pd.gteps);          // ...at external-memory rates
  EXPECT_STREQ(pf.bound_by, "flash I/O");
}

TEST(ScaleModel, MoreNodesMoreGtepsWithEfficiencyLoss) {
  graph::GraphSystem one{"1 node", hsim::machines::cpu_2014(),
                         hsim::clusters::ethernet(1), 1,
                         128.0 * double(1ull << 30), 0.0, 1e9};
  graph::GraphSystem many = one;
  many.nodes = 300;
  many.network = hsim::clusters::ethernet(300);
  auto p1 = graph::scale_model(one, 20.0, 24.0);
  auto pn = graph::scale_model(many, 20.0, 24.0);
  EXPECT_GT(pn.gteps, p1.gteps);           // scales up...
  EXPECT_LT(pn.gteps, 300.0 * p1.gteps);   // ...sublinearly
}

TEST(ScaleModel, BytesPerEdgeFromRealRunIsSane) {
  auto g = make_test_graph(11, 17);
  const double bpe = graph::measured_bytes_per_edge(g);
  EXPECT_GT(bpe, 4.0);
  EXPECT_LT(bpe, 64.0);
}

}  // namespace
