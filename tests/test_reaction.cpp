// Tests for the Cardioid module: rational-fit accuracy, HH membrane
// behaviour (rest, excitation, refractoriness), libm-vs-rational kernel
// agreement, wave propagation in tissue, and placement accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "reaction/monodomain.hpp"

namespace {

using namespace coe;

TEST(RationalFit, ApproximatesExpTightly) {
  reaction::RationalFit fit([](double x) { return std::exp(x); }, -3.0, 3.0,
                            8, 6);
  EXPECT_LT(fit.max_relative_error([](double x) { return std::exp(x); }),
            1e-6);
}

TEST(RationalFit, ExactForLowDegreePolynomials) {
  auto poly = [](double x) { return 2.0 + 3.0 * x - x * x; };
  reaction::RationalFit fit(poly, -1.0, 2.0, 3, 0);
  EXPECT_LT(fit.max_relative_error(poly), 1e-11);
}

TEST(RationalFit, SpecializedMatchesRuntime) {
  auto f = [](double x) { return std::exp(-x * x); };
  reaction::RationalFit fit(f, -2.0, 2.0, 6, 4);
  reaction::SpecializedRational<6, 4> spec(fit);
  for (double x = -2.0; x <= 2.0; x += 0.05) {
    EXPECT_NEAR(spec(x), fit(x), 1e-14);
  }
}

TEST(RationalFit, HigherDegreeReducesError) {
  auto f = [](double x) { return std::exp(x); };
  reaction::RationalFit lo(f, -4.0, 4.0, 3, 2);
  reaction::RationalFit hi(f, -4.0, 4.0, 8, 6);
  EXPECT_LT(hi.max_relative_error(f), 0.01 * lo.max_relative_error(f));
}

TEST(Rates, SingularityHandledSmoothly) {
  // alpha_m has a removable singularity at v = -40.
  const double left = reaction::rates::alpha_m(-40.0 - 1e-8);
  const double mid = reaction::rates::alpha_m(-40.0);
  const double right = reaction::rates::alpha_m(-40.0 + 1e-8);
  EXPECT_NEAR(left, mid, 1e-6);
  EXPECT_NEAR(right, mid, 1e-6);
  EXPECT_NEAR(mid, 1.0, 1e-3);  // limit = 0.1 * s = 1.0
}

TEST(Membrane, RationalRatesFitWithinTolerance) {
  // The dt-baked Rush-Larsen updates are harder to fit than the raw rates;
  // ~2e-4 relative error keeps trajectories within 1 mV of libm (checked
  // end-to-end in RationalKernelTracksLibm below).
  reaction::MembraneKernel kernel(reaction::RateKind::Rational);
  EXPECT_LT(kernel.fit_error(), 1e-3);
}

TEST(Membrane, RestingStateIsStable) {
  reaction::MembraneKernel kernel(reaction::RateKind::Libm);
  std::vector<reaction::CellState> cells(4);
  auto ctx = core::make_seq();
  for (int s = 0; s < 2000; ++s) kernel.step(ctx, cells, 0.01);
  for (const auto& c : cells) {
    EXPECT_NEAR(c.v, -65.0, 1.5);  // stays near rest
  }
}

TEST(Membrane, StimulusTriggersActionPotential) {
  reaction::MembraneKernel kernel(reaction::RateKind::Libm);
  std::vector<reaction::CellState> cells(1);
  auto ctx = core::make_seq();
  double vmax = -100.0;
  for (int s = 0; s < 200; ++s) {  // 2 ms stimulus
    kernel.step(ctx, cells, 0.01, 20.0, 0, 1);
  }
  for (int s = 0; s < 3000; ++s) {
    kernel.step(ctx, cells, 0.01);
    vmax = std::max(vmax, cells[0].v);
  }
  EXPECT_GT(vmax, 20.0);          // overshoot above 0 mV
  EXPECT_LT(cells[0].v, -55.0);   // repolarized afterwards
}

TEST(Membrane, RationalKernelTracksLibm) {
  reaction::MembraneKernel exact(reaction::RateKind::Libm);
  reaction::MembraneKernel approx(reaction::RateKind::Rational);
  std::vector<reaction::CellState> a(1), b(1);
  auto ctx = core::make_seq();
  double worst = 0.0;
  for (int s = 0; s < 1500; ++s) {
    const double stim = s < 200 ? 20.0 : 0.0;
    exact.step(ctx, a, 0.01, stim, 0, 1);
    approx.step(ctx, b, 0.01, stim, 0, 1);
    worst = std::max(worst, std::abs(a[0].v - b[0].v));
  }
  // Trajectories agree through a full action potential.
  EXPECT_LT(worst, 1.0);  // < 1 mV through a ~100 mV excursion
}

TEST(Monodomain, WavePropagatesAcrossTissue) {
  auto gpu = core::make_device();
  auto cpu = core::make_cpu();
  reaction::TissueConfig cfg;
  cfg.nx = 48;
  cfg.ny = 16;
  reaction::Monodomain tissue(gpu, cpu, cfg);
  // Stimulate the left edge.
  tissue.stimulate(0, 4, 0, cfg.ny, 80.0, 3.0);
  tissue.run(1.0);
  EXPECT_GT(tissue.voltage(2, cfg.ny / 2), 0.0);    // left edge fired
  EXPECT_LT(tissue.voltage(40, cfg.ny / 2), -50.0);  // far side at rest
  double far_max = -1e300;
  for (int ms = 0; ms < 20; ++ms) {
    tissue.run(1.0);
    far_max = std::max(far_max, tissue.voltage(40, cfg.ny / 2));
  }
  EXPECT_GT(far_max, 0.0) << "wave never reached the far side";
}

TEST(Monodomain, SplitPlacementPaysTransfersEveryStep) {
  auto run = [](reaction::TissuePlacement placement) {
    auto gpu = core::make_device();
    auto cpu = core::make_cpu();
    reaction::TissueConfig cfg;
    cfg.nx = 16;
    cfg.ny = 16;
    cfg.placement = placement;
    reaction::Monodomain tissue(gpu, cpu, cfg);
    const auto before = gpu.counters().transfers;
    for (int s = 0; s < 10; ++s) tissue.step();
    return gpu.counters().transfers - before;
  };
  EXPECT_EQ(run(reaction::TissuePlacement::AllGpu), 0u);
  EXPECT_EQ(run(reaction::TissuePlacement::SplitCpuDiffusion), 20u);
}

TEST(Monodomain, PlacementsAgreeNumerically) {
  auto gpu1 = core::make_device();
  auto cpu1 = core::make_cpu();
  auto gpu2 = core::make_device();
  auto cpu2 = core::make_cpu();
  reaction::TissueConfig cfg;
  cfg.nx = 24;
  cfg.ny = 8;
  reaction::Monodomain a(gpu1, cpu1, cfg);
  cfg.placement = reaction::TissuePlacement::SplitCpuDiffusion;
  reaction::Monodomain b(gpu2, cpu2, cfg);
  a.stimulate(0, 4, 0, 8, 30.0, 2.0);
  b.stimulate(0, 4, 0, 8, 30.0, 2.0);
  a.run(5.0);
  b.run(5.0);
  for (std::size_t i = 0; i < cfg.nx; ++i) {
    for (std::size_t j = 0; j < cfg.ny; ++j) {
      EXPECT_NEAR(a.voltage(i, j), b.voltage(i, j), 1e-12);
    }
  }
}

}  // namespace
