// Tests for coe::prof: critical-path extraction on hand-built DAGs with
// known answers, the fuzz property tying the extracted path length to the
// simulated clock on random stream programs, the RAII span tree, and the
// exporters (coe-prof-v1 JSON, Chrome flow events, phase percentages).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/coe.hpp"
#include "obs/obs.hpp"
#include "prof/prof.hpp"

namespace {

using namespace coe;

obs::TraceEvent kernel(double t0, double d, int stream,
                       const std::string& phase = "main") {
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::Kernel;
  e.bound = obs::TraceEvent::Bound::Memory;
  e.backend = "device";
  e.phase = phase;
  e.label = "k";
  e.t_start = t0;
  e.duration = d;
  e.stream = stream;
  return e;
}

obs::TraceEvent wait_marker(double t, int stream, std::int64_t dep) {
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::EventWait;
  e.backend = "device";
  e.t_start = t;
  e.duration = 0.0;
  e.stream = stream;
  e.dep = dep;
  return e;
}

// ---------------------------------------------------------------------------
// Hand-built DAGs with closed-form answers.

TEST(CriticalPath, SingleStreamEqualsSumOfDurations) {
  obs::TraceBuffer buf;
  buf.set_source("toy", 0.0);
  double t = 0.0;
  for (int i = 0; i < 5; ++i) {
    buf.push(kernel(t, 0.25, 0));
    t += 0.25;
  }
  const prof::DagProfile p = prof::analyze(buf);
  EXPECT_NEAR(p.critical_s, 1.25, 1e-12);
  EXPECT_NEAR(p.coverage, 1.0, 1e-12);
  ASSERT_EQ(p.critical_path.size(), 5u);
  EXPECT_EQ(p.critical_path.front().via, prof::EdgeKind::Root);
  for (std::size_t i = 1; i < p.critical_path.size(); ++i) {
    EXPECT_EQ(p.critical_path[i].via, prof::EdgeKind::ProgramOrder);
  }
  EXPECT_NEAR(p.overlap_efficiency, 1.0, 1e-12);
}

TEST(CriticalPath, TwoOverlappedStreamsEqualsMax) {
  // Stream 0 runs 1.0 s of work, stream 1 runs 0.6 s, fully overlapped.
  obs::TraceBuffer buf;
  buf.set_source("toy", 0.0);
  buf.push(kernel(0.0, 0.5, 0));
  buf.push(kernel(0.0, 0.6, 1));
  buf.push(kernel(0.5, 0.5, 0));
  const prof::DagProfile p = prof::analyze(buf);
  EXPECT_NEAR(p.critical_s, 1.0, 1e-12);  // max, not 1.6 (the sum)
  EXPECT_NEAR(p.busy_s, 1.6, 1e-12);
  EXPECT_NEAR(p.overlap_efficiency, 1.6, 1e-12);
  // The path runs down stream 0; stream 1 never binds it.
  for (const auto& step : p.critical_path) {
    EXPECT_EQ(p.events[step.event].stream, 0);
  }
  ASSERT_EQ(p.streams.size(), 2u);
  EXPECT_NEAR(p.streams[0].utilization, 1.0, 1e-12);
  EXPECT_NEAR(p.streams[1].utilization, 0.6, 1e-12);
}

TEST(CriticalPath, ForkJoinPicksLongerBranch) {
  // Fork: a 0.2 s root on stream 0, then branches on streams 0 (long,
  // 0.8 s) and 1 (short, 0.3 s). Join: stream 1 waits on the long branch
  // (wait marker + payload starting at its end). The path must be
  // root -> long branch -> join, 0.2 + 0.8 + 0.4 = 1.4 s.
  obs::TraceBuffer buf;
  buf.set_source("toy", 0.0);
  buf.push(kernel(0.0, 0.2, 0));
  buf.push(kernel(0.2, 0.8, 0));   // long branch
  buf.push(kernel(0.2, 0.3, 1));   // short branch
  buf.push(wait_marker(1.0, 1, 7));
  buf.push(kernel(1.0, 0.4, 1));   // join, bound by the long branch
  const prof::DagProfile p = prof::analyze(buf);
  EXPECT_NEAR(p.critical_s, 1.4, 1e-12);
  EXPECT_NEAR(p.coverage, 1.0, 1e-12);
  ASSERT_EQ(p.critical_path.size(), 3u);
  EXPECT_EQ(p.critical_path[0].event, 0u);
  EXPECT_EQ(p.critical_path[1].event, 1u);  // the 0.8 s branch, not the 0.3 s
  // Markers are excluded from the analysis event list, so the join kernel
  // (5th pushed) is events[3].
  EXPECT_EQ(p.critical_path[2].event, 3u);
  EXPECT_EQ(p.critical_path[2].via, prof::EdgeKind::EventWait);
  EXPECT_NEAR(p.edge_seconds[static_cast<int>(prof::EdgeKind::EventWait)],
              0.4, 1e-12);
}

TEST(CriticalPath, CrossStreamContentionClassifiedAsSlot) {
  // Two streams, one execution slot: stream 1's kernel can only start when
  // stream 0's finishes. No wait marker exists, so the binding edge is
  // resource contention (KernelSlot), not a dependency.
  obs::TraceBuffer buf;
  buf.set_source("toy", 0.0);
  buf.push(kernel(0.0, 0.5, 0));
  buf.push(kernel(0.5, 0.5, 1));
  const prof::DagProfile p = prof::analyze(buf);
  EXPECT_NEAR(p.critical_s, 1.0, 1e-12);
  ASSERT_EQ(p.critical_path.size(), 2u);
  EXPECT_EQ(p.critical_path[1].via, prof::EdgeKind::KernelSlot);
}

TEST(CriticalPath, MarkersCarryNoTimelineWeight) {
  obs::TraceBuffer buf;
  buf.set_source("toy", 0.0);
  buf.push(kernel(0.0, 1.0, 0));
  obs::TraceEvent sync;
  sync.kind = obs::TraceEvent::Kind::Sync;
  sync.t_start = 1.0;
  sync.stream = 0;
  buf.push(sync);
  const prof::DagProfile p = prof::analyze(buf);
  EXPECT_EQ(p.events.size(), 1u);  // the marker is excluded
  EXPECT_NEAR(p.critical_s, 1.0, 1e-12);
  EXPECT_NEAR(p.busy_s, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Per-phase attribution invariants.

TEST(PhaseProfile, PercentagesSumToHundredAndPartitionBusy) {
  auto ctx = core::make_device(hsim::machines::v100());
  obs::TraceBuffer buf;
  ctx.set_trace(&buf);
  std::vector<double> x(1 << 16, 1.0);
  ctx.set_phase("a");
  ctx.forall(x.size(), hsim::Workload{2.0, 16.0},
             [&](std::size_t i) { x[i] += 1.0; });
  ctx.record_transfer(1e6, true);
  ctx.set_phase("b");
  // Heavy enough that roofline flop time dwarfs the launch overhead.
  ctx.forall(x.size(), hsim::Workload{4000.0, 8.0},
             [&](std::size_t i) { x[i] *= 1.0001; });
  const prof::DagProfile p = prof::analyze(buf);
  ASSERT_GE(p.phases.size(), 2u);
  double busy_sum = 0.0;
  for (const auto& ph : p.phases) {
    const double parts =
        ph.compute_s + ph.memory_s + ph.launch_s + ph.transfer_s;
    EXPECT_NEAR(parts, ph.busy_s, 1e-12 * std::max(1.0, ph.busy_s))
        << ph.name;
    busy_sum += ph.busy_s;
    if (ph.total_s() > 0.0) {
      const double pct = 100.0 * (parts + ph.stall_s) / ph.total_s();
      EXPECT_NEAR(pct, 100.0, 1e-9) << ph.name;
    }
  }
  EXPECT_NEAR(busy_sum, p.busy_s, 1e-12 * std::max(1.0, p.busy_s));
  const prof::PhaseProfile* a = p.phase("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kernels, 1u);
  EXPECT_EQ(a->transfers, 1u);
  EXPECT_GT(a->transfer_s, 0.0);
  const prof::PhaseProfile* b = p.phase("b");
  ASSERT_NE(b, nullptr);
  // Workload{64 flops, 8 bytes} on a V100 is far past the ridge point.
  EXPECT_EQ(b->bound(), prof::Category::Compute);
}

// ---------------------------------------------------------------------------
// Fuzz property: on any random stream program the extracted critical path
// tiles the window exactly, so its length equals the simulated makespan.

TEST(CriticalPath, FuzzMatchesSimulatedTime) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    core::Rng rng(seed * 0x51ed2701);
    auto ctx = core::make_device(hsim::machines::v100());
    obs::TraceBuffer buf(1 << 12);
    ctx.set_trace(&buf);
    std::vector<double> x(1 << 12, 0.0);
    core::ExecContext::StreamEvent last_event{};
    bool have_event = false;
    const int ops = 40 + static_cast<int>(rng.uniform() * 40);
    for (int op = 0; op < ops; ++op) {
      ctx.stream(static_cast<std::size_t>(rng.uniform() * 4));
      const double r = rng.uniform();
      if (r < 0.45) {
        const std::size_t n = 64 + static_cast<std::size_t>(
                                       rng.uniform() * (x.size() - 64));
        ctx.forall(n, hsim::Workload{1.0 + 60.0 * rng.uniform(), 16.0},
                   [&](std::size_t i) { x[i] += 1.0; });
      } else if (r < 0.65) {
        ctx.record_transfer(1e3 + 1e6 * rng.uniform(), rng.uniform() < 0.5);
      } else if (r < 0.78) {
        last_event = ctx.record_event();
        have_event = true;
      } else if (r < 0.92) {
        if (have_event) ctx.wait_event(last_event);
      } else {
        ctx.sync();
      }
    }
    ctx.sync();
    ASSERT_EQ(buf.dropped(), 0u) << "seed " << seed;
    const prof::DagProfile p = prof::analyze(buf);
    const double makespan = ctx.simulated_time();
    EXPECT_NEAR(p.critical_s, makespan,
                1e-9 * std::max(1.0, std::fabs(makespan)))
        << "seed " << seed;
    EXPECT_NEAR(p.coverage, 1.0, 1e-9) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// RAII spans.

TEST(Spans, NullProfilerIsANoOp) {
  auto ctx = core::make_device(hsim::machines::v100());
  ctx.set_phase("outer");
  {
    prof::Scope s(nullptr, &ctx, "region");
    EXPECT_EQ(ctx.phase(), "outer");  // phase untouched
  }
  EXPECT_EQ(ctx.phase(), "outer");
}

TEST(Spans, TreeNestsAndRestoresPhase) {
  prof::Profiler prof;
  auto ctx = core::make_device(hsim::machines::v100());
  ctx.set_phase("pre");
  std::vector<double> x(4096, 0.0);
  {
    prof::Scope outer(&prof, &ctx, "step");
    EXPECT_EQ(ctx.phase(), "step");
    {
      prof::Scope inner(&prof, &ctx, "kernels");
      EXPECT_EQ(ctx.phase(), "step/kernels");
      ctx.forall(x.size(), hsim::Workload{2.0, 16.0},
                 [&](std::size_t i) { x[i] += 1.0; });
    }
    EXPECT_EQ(ctx.phase(), "step");
    {
      prof::Scope again(&prof, &ctx, "kernels");
      ctx.forall(x.size(), hsim::Workload{2.0, 16.0},
                 [&](std::size_t i) { x[i] += 1.0; });
    }
  }
  EXPECT_EQ(ctx.phase(), "pre");
  ASSERT_EQ(prof.root().children.size(), 1u);
  const prof::Profiler::Node& step = *prof.root().children[0];
  EXPECT_EQ(step.name, "step");
  EXPECT_EQ(step.calls, 1u);
  ASSERT_EQ(step.children.size(), 1u);
  const prof::Profiler::Node& kernels = *step.children[0];
  EXPECT_EQ(kernels.calls, 2u);
  EXPECT_GT(kernels.sim_s, 0.0);
  EXPECT_LE(kernels.sim_s, step.sim_s + 1e-15);
  EXPECT_FALSE(prof.empty());
  // The report renders without blowing up and mentions both regions.
  const std::string rep = prof.report("t");
  EXPECT_NE(rep.find("step"), std::string::npos);
  EXPECT_NE(rep.find("kernels"), std::string::npos);
}

TEST(Spans, NullContextCapturesWallOnly) {
  prof::Profiler prof;
  {
    prof::Scope s(&prof, nullptr, "host_stage");
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  }
  ASSERT_EQ(prof.root().children.size(), 1u);
  EXPECT_GE(prof.root().children[0]->wall_s, 0.0);
  EXPECT_EQ(prof.root().children[0]->sim_s, 0.0);
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(Exporters, ProfileJsonRoundTripsThroughParser) {
  auto ctx = core::make_device(hsim::machines::v100());
  obs::TraceBuffer buf;
  ctx.set_trace(&buf);
  std::vector<double> x(4096, 0.0);
  ctx.set_phase("solve");
  ctx.forall(x.size(), hsim::Workload{2.0, 16.0},
             [&](std::size_t i) { x[i] += 1.0; });
  const prof::DagProfile p = prof::analyze(buf);
  prof::Profiler spans;
  { prof::Scope s(&spans, &ctx, "solve"); }
  const obs::Json j = prof::profile_json(p, &spans, "unit");
  const obs::Json back = obs::Json::parse(j.dump());
  EXPECT_EQ(back.at("schema").as_string(), "coe-prof-v1");
  EXPECT_EQ(back.at("name").as_string(), "unit");
  EXPECT_EQ(back.at("machine").as_string(), "V100 (Volta)");
  EXPECT_NEAR(back.at("critical_s").as_number(), p.critical_s, 0.0);
  EXPECT_TRUE(back.at("spans").is_array());
  double pct_sum = 0.0;
  const obs::Json& ph = back.at("phases").items().at(0);
  for (const char* k :
       {"compute", "memory", "launch", "transfer", "dependency_stall"}) {
    pct_sum += ph.at("pct").at(k).as_number();
  }
  EXPECT_NEAR(pct_sum, 100.0, 1e-9);
}

TEST(Exporters, FlowEventsLinkConsecutiveCriticalSteps) {
  obs::TraceBuffer buf;
  buf.set_source("toy", 0.0);
  buf.push(kernel(0.0, 0.5, 0));
  buf.push(kernel(0.5, 0.5, 1));
  const prof::DagProfile p = prof::analyze(buf);
  const std::vector<std::string> flow = prof::critical_path_flow_events(p);
  // One s->f pair for the single link between the two steps.
  ASSERT_EQ(flow.size(), 2u);
  EXPECT_NE(flow[0].find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(flow[1].find("\"ph\":\"f\""), std::string::npos);
  // The decorated trace still parses back (the parser skips flow events).
  std::ostringstream os;
  obs::write_chrome_trace(os, buf, &flow);
  const obs::TraceBuffer back = obs::parse_chrome_trace(os.str());
  EXPECT_EQ(back.size(), buf.size());
  EXPECT_EQ(back.source(), "toy");
}

TEST(Exporters, AnalyzeSurvivesChromeTraceRoundTrip) {
  auto ctx = core::make_device(hsim::machines::v100());
  obs::TraceBuffer buf;
  ctx.set_trace(&buf);
  std::vector<double> x(1 << 14, 0.0);
  for (int s = 0; s < 3; ++s) {
    ctx.stream(static_cast<std::size_t>(s));
    ctx.forall(x.size(), hsim::Workload{4.0, 24.0},
               [&](std::size_t i) { x[i] += 1.0; });
  }
  ctx.sync();
  std::ostringstream os;
  obs::write_chrome_trace(os, buf);
  const obs::TraceBuffer back = obs::parse_chrome_trace(os.str());
  const prof::DagProfile a = prof::analyze(buf);
  const prof::DagProfile b = prof::analyze(back);
  EXPECT_NEAR(a.critical_s, b.critical_s,
              1e-9 * std::max(1.0, a.critical_s));
  EXPECT_EQ(a.critical_path.size(), b.critical_path.size());
  EXPECT_EQ(a.streams.size(), b.streams.size());
  EXPECT_EQ(b.machine, "V100 (Volta)");
}

TEST(Exporters, BottleneckReportStatesABoundPerPhase) {
  auto ctx = core::make_device(hsim::machines::v100());
  obs::TraceBuffer buf;
  ctx.set_trace(&buf);
  std::vector<double> x(1 << 20, 0.0);
  ctx.set_phase("bw");
  // 64 B/element over 1M elements: byte time far past the launch overhead.
  ctx.forall(x.size(), hsim::Workload{1.0, 64.0},
             [&](std::size_t i) { x[i] += 1.0; });
  const prof::DagProfile p = prof::analyze(buf);
  const std::string rep = prof::bottleneck_report(p, "unit");
  EXPECT_NE(rep.find("critical path"), std::string::npos);
  EXPECT_NE(rep.find("bw"), std::string::npos);
  EXPECT_NE(rep.find("memory"), std::string::npos);  // the stated bound
}

}  // namespace
