// Tests for the mini-hypre module: BoomerAMG setup internals, V-cycle
// convergence, AMG-preconditioned CG, and the structured BoxLoop solver.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "amg/amg.hpp"
#include "core/rng.hpp"
#include "la/la.hpp"

namespace {

using namespace coe;

TEST(Strength, KeepsOnlyStrongNegativeEntries) {
  // Row 0: offdiag -4 and -1 with theta=0.5 -> only -4 is strong.
  auto a = la::CsrMatrix::from_triplets(
      3, 3,
      {{0, 0, 6.0}, {0, 1, -4.0}, {0, 2, -1.0},
       {1, 0, -4.0}, {1, 1, 5.0},
       {2, 0, -1.0}, {2, 2, 2.0}});
  auto s = amg::strength_graph(a, 0.5);
  EXPECT_EQ(s.rowptr()[1] - s.rowptr()[0], 1u);
  EXPECT_EQ(s.colind()[0], 1u);
}

TEST(Strength, PositiveOffdiagIgnored) {
  auto a = la::CsrMatrix::from_triplets(
      2, 2, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 2.0}});
  auto s = amg::strength_graph(a, 0.25);
  EXPECT_EQ(s.nnz(), 0u);
}

TEST(Pmis, ProducesValidSplitting) {
  auto a = la::poisson2d(20, 20);
  auto s = amg::strength_graph(a, 0.25);
  auto cf = amg::pmis_coarsen(s);
  std::size_t nc = 0;
  for (auto t : cf) nc += (t == amg::PointType::Coarse);
  // Poisson coarsens to roughly a quarter..half of the points.
  EXPECT_GT(nc, a.rows() / 8);
  EXPECT_LT(nc, a.rows() * 3 / 4);
  // Every fine point must have a strong coarse neighbour.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    if (cf[i] == amg::PointType::Coarse) continue;
    if (s.rowptr()[i + 1] == s.rowptr()[i]) continue;
    bool has_c = false;
    for (std::size_t k = s.rowptr()[i]; k < s.rowptr()[i + 1]; ++k) {
      has_c |= (cf[s.colind()[k]] == amg::PointType::Coarse);
    }
    EXPECT_TRUE(has_c) << "fine point " << i << " has no coarse neighbour";
  }
}

TEST(Interp, RowsSumToOneForMMatrix) {
  // For an M-matrix with zero row sums at interior points, direct
  // interpolation rows of fine points sum to ~a_ii-normalized weights; for
  // coarse points the row is exactly the unit vector.
  auto a = la::poisson2d(12, 12);
  auto s = amg::strength_graph(a, 0.25);
  auto cf = amg::pmis_coarsen(s);
  auto p = amg::direct_interpolation(a, s, cf);
  std::size_t nc = 0;
  for (auto t : cf) nc += (t == amg::PointType::Coarse);
  EXPECT_EQ(p.cols(), nc);
  EXPECT_EQ(p.rows(), a.rows());
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t k = p.rowptr()[i]; k < p.rowptr()[i + 1]; ++k) {
      row_sum += p.values()[k];
      EXPECT_GE(p.values()[k], 0.0);  // M-matrix -> nonnegative weights
    }
    if (cf[i] == amg::PointType::Coarse) {
      EXPECT_DOUBLE_EQ(row_sum, 1.0);
    } else if (p.rowptr()[i + 1] > p.rowptr()[i]) {
      EXPECT_GT(row_sum, 0.0);
      EXPECT_LE(row_sum, 1.5);
    }
  }
}

class BoomerAmgPoisson : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BoomerAmgPoisson, VcycleSolves) {
  const std::size_t nx = GetParam();
  auto a = la::poisson2d(nx, nx);
  const std::size_t n = a.rows();
  amg::BoomerAmg amg_solver(a, {});
  EXPECT_GE(amg_solver.num_levels(), 2u);
  EXPECT_LT(amg_solver.operator_complexity(), 3.0);

  std::vector<double> x_true(n), b(n), x(n, 0.0);
  core::Rng rng(1);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  auto ctx = core::make_seq();
  a.spmv(ctx, x_true, b);
  const std::size_t iters = amg_solver.solve(ctx, b, x, 1e-8, 100);
  EXPECT_LT(iters, 60u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BoomerAmgPoisson,
                         ::testing::Values(16, 24, 32));

TEST(BoomerAmg, PreconditionsCgFasterThanJacobi) {
  auto a = la::poisson2d(32, 32);
  const std::size_t n = a.rows();
  std::vector<double> b(n, 1.0);
  la::CsrOperator op(a);
  la::SolveOptions opts{1000, 1e-8, 0.0};

  auto ctx1 = core::make_seq();
  std::vector<double> x1(n, 0.0);
  la::JacobiPreconditioner jac(a);
  auto r1 = la::cg(ctx1, op, jac, b, x1, opts);

  auto ctx2 = core::make_seq();
  std::vector<double> x2(n, 0.0);
  amg::BoomerAmg prec(a, {});
  auto r2 = la::cg(ctx2, op, prec, b, x2, opts);

  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations / 2);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-5);
}

TEST(BoomerAmg, AnisotropicProblemStillConverges) {
  // Strong coupling in x only: strength graph should pick it up.
  const std::size_t nx = 24, ny = 24;
  std::vector<la::Triplet> t;
  auto id = [nx](std::size_t i, std::size_t j) { return j * nx + i; };
  const double eps = 0.01;
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t r = id(i, j);
      t.push_back({r, r, 2.0 + 2.0 * eps});
      if (i > 0) t.push_back({r, id(i - 1, j), -1.0});
      if (i + 1 < nx) t.push_back({r, id(i + 1, j), -1.0});
      if (j > 0) t.push_back({r, id(i, j - 1), -eps});
      if (j + 1 < ny) t.push_back({r, id(i, j + 1), -eps});
    }
  }
  auto a = la::CsrMatrix::from_triplets(nx * ny, nx * ny, t);
  amg::BoomerAmg solver(a, {});
  std::vector<double> b(nx * ny, 1.0), x(nx * ny, 0.0);
  auto ctx = core::make_seq();
  const std::size_t iters = solver.solve(ctx, b, x, 1e-8, 100);
  EXPECT_LT(iters, 100u);
}

TEST(BoomerAmg, SolvePhaseIsSpmvDominatedOnDevice) {
  auto a = la::poisson2d(24, 24);
  amg::BoomerAmg solver(a, {});
  std::vector<double> b(a.rows(), 1.0), x(a.rows(), 0.0);
  auto gpu = core::make_device();
  gpu.set_phase("amg solve");
  solver.solve(gpu, b, x, 1e-8, 100);
  // Every V-cycle is kernels only: launches recorded, flops > 0.
  EXPECT_GT(gpu.counters().launches, 10u);
  EXPECT_GT(gpu.counters().flops, 0.0);
  EXPECT_GT(gpu.simulated_time(), 0.0);
}

class StructSolverGrid : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StructSolverGrid, SolvesPoissonFast) {
  const std::size_t n = GetParam();  // 2^k - 1 grids
  amg::StructSolver solver(n, n, amg::StructStencil5{});
  EXPECT_GE(solver.num_levels(), 2u);
  std::vector<double> f(n * n, 1.0), u(n * n, 0.0);
  auto ctx = core::make_seq();
  const double r0 = solver.residual_norm(ctx, f, u);
  const std::size_t cycles = solver.solve(ctx, f, u, 1e-9, 60);
  EXPECT_LE(cycles, 15u) << "geometric MG should converge in ~10 cycles";
  EXPECT_LT(solver.residual_norm(ctx, f, u), 1e-8 * r0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StructSolverGrid,
                         ::testing::Values(15, 31, 63));

TEST(StructSolver, MatchesBoomerAmgSolution) {
  const std::size_t n = 15;
  amg::StructSolver pfmg(n, n, amg::StructStencil5{});
  auto a = la::poisson2d(n, n);
  amg::BoomerAmg boomer(a, {});
  std::vector<double> f(n * n), u1(n * n, 0.0), u2(n * n, 0.0);
  core::Rng rng(3);
  for (auto& v : f) v = rng.uniform(-1.0, 1.0);
  auto ctx = core::make_seq();
  pfmg.solve(ctx, f, u1, 1e-11, 60);
  boomer.solve(ctx, f, u2, 1e-11, 200);
  // poisson2d's (i + j*nx) and StructSolver's (i*ny + j) produce the same
  // abstract matrix on a square grid, so the flat vectors must agree.
  for (std::size_t k = 0; k < n * n; ++k) EXPECT_NEAR(u1[k], u2[k], 1e-6);
}

TEST(BoxLoop, VisitsExactlyTheBox) {
  auto ctx = core::make_seq();
  std::vector<int> hits(8 * 8, 0);
  amg::Box2 box{2, 5, 3, 7};
  amg::box_loop(ctx, box, {}, [&](std::size_t i, std::size_t j) {
    hits[i * 8 + j] += 1;
  });
  int total = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      const bool inside = i >= 2 && i < 5 && j >= 3 && j < 7;
      EXPECT_EQ(hits[i * 8 + j], inside ? 1 : 0);
      total += hits[i * 8 + j];
    }
  }
  EXPECT_EQ(total, int(box.size()));
}


TEST(BoomerAmg, GpuSetupOptionChargesWork) {
  // The paper's follow-on work: AMG setup on the GPU. With setup_ctx set,
  // hierarchy construction records kernels; without it, setup is silent.
  auto a = la::poisson2d(20, 20);
  auto gpu = core::make_device();
  amg::AmgOptions opts;
  opts.setup_ctx = &gpu;
  amg::BoomerAmg with_setup(a, opts);
  EXPECT_GT(gpu.counters().launches, 0u);
  EXPECT_GT(gpu.simulated_time(), 0.0);

  auto gpu2 = core::make_device();
  amg::BoomerAmg silent(la::poisson2d(20, 20), {});
  EXPECT_EQ(gpu2.counters().launches, 0u);
  // Same numerical hierarchy either way.
  EXPECT_EQ(with_setup.num_levels(), silent.num_levels());
  EXPECT_DOUBLE_EQ(with_setup.operator_complexity(),
                   silent.operator_complexity());
}

}  // namespace
