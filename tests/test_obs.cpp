// Tests for coe::obs: the trace ring buffer and its ExecContext hook, the
// Chrome trace exporter, the metrics registry and its subsystem
// publishers, and the dependency-free JSON layer everything round-trips
// through.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/coe.hpp"
#include "mpi/comm.hpp"
#include "obs/obs.hpp"
#include "resil/resil.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace coe;

obs::TraceEvent kernel_event(const std::string& label, double t0, double d) {
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::Kernel;
  e.bound = obs::TraceEvent::Bound::Compute;
  e.backend = "seq";
  e.phase = "main";
  e.label = label;
  e.t_start = t0;
  e.duration = d;
  return e;
}

TEST(TraceBuffer, RingOverwritesOldestAndCountsDrops) {
  obs::TraceBuffer buf(4);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    buf.push(kernel_event("e" + std::to_string(i), i, 0.5));
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 2u);
  const auto snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest two were overwritten; the rest come out in chronological order.
  EXPECT_EQ(snap.front().label, "e2");
  EXPECT_EQ(snap.back().label, "e5");
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i - 1].t_start, snap[i].t_start);
  }
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(ExecTracing, DisabledCostsNothingAndRecordsNothing) {
  auto ctx = core::make_device();
  EXPECT_EQ(ctx.trace(), nullptr);
  ctx.forall(100, {2.0, 8.0}, [](std::size_t) {});
  ctx.record_transfer(1e6, true);
  EXPECT_EQ(ctx.counters().launches, 1u);  // counters still work untraced
}

TEST(ExecTracing, EventsCarryPhaseLabelAndClassification) {
  auto ctx = core::make_device(hsim::machines::v100());
  obs::TraceBuffer buf;
  ctx.set_trace(&buf);
  ctx.set_phase("setup");
  // Memory-bound: 0.25 flop/byte, far below any GPU ridge.
  ctx.forall(1000, {2.0, 8.0}, [](std::size_t) {});
  ctx.set_phase("solve");
  ctx.set_label("axpy");
  // Compute-bound: 1000 flops/byte.
  ctx.record_kernel({1e12, 1e9});
  ctx.set_label("");
  ctx.record_transfer(5e6, true);
  ctx.record_transfer(7e6, false);

  const auto snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 4u);

  EXPECT_EQ(snap[0].kind, obs::TraceEvent::Kind::Kernel);
  EXPECT_EQ(snap[0].phase, "setup");
  EXPECT_EQ(snap[0].label, "forall");  // empty label falls back to op kind
  EXPECT_EQ(snap[0].bound, obs::TraceEvent::Bound::Memory);
  EXPECT_DOUBLE_EQ(snap[0].flops, 2000.0);
  EXPECT_DOUBLE_EQ(snap[0].bytes, 8000.0);
  EXPECT_STREQ(snap[0].backend, "device");

  EXPECT_EQ(snap[1].label, "axpy");
  EXPECT_EQ(snap[1].phase, "solve");
  EXPECT_EQ(snap[1].bound, obs::TraceEvent::Bound::Compute);

  EXPECT_EQ(snap[2].kind, obs::TraceEvent::Kind::TransferH2D);
  EXPECT_EQ(snap[3].kind, obs::TraceEvent::Kind::TransferD2H);
  EXPECT_DOUBLE_EQ(snap[3].bytes, 7e6);

  // Start/duration tile the simulated clock: each event ends where the
  // accounting stood when it was recorded.
  EXPECT_NEAR(snap[3].end(), ctx.simulated_time(), 1e-12);

  // reset() clears the attached buffer along with the counters.
  ctx.reset();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(ctx.trace(), &buf);  // still attached

  // Detaching stops recording.
  ctx.set_trace(nullptr);
  ctx.forall(10, {1.0, 1.0}, [](std::size_t) {});
  EXPECT_TRUE(buf.empty());
}

TEST(ExecTracing, ClassificationMatchesMachineRidge) {
  const auto m = hsim::machines::v100();
  auto ctx = core::make_device(m);
  obs::TraceBuffer buf;
  ctx.set_trace(&buf);
  const double ridge = m.ridge();
  ctx.record_kernel({ridge * 2.0 * 1e6, 1e6});  // above: compute-bound
  ctx.record_kernel({ridge * 0.5 * 1e6, 1e6});  // below: memory-bound
  const auto snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].bound, obs::TraceEvent::Bound::Compute);
  EXPECT_EQ(snap[1].bound, obs::TraceEvent::Bound::Memory);
}

TEST(ChromeTrace, ExportIsValidAndComplete) {
  auto ctx = core::make_device();
  obs::TraceBuffer buf;
  ctx.set_trace(&buf);
  ctx.set_phase("assembly");
  ctx.forall(100, {4.0, 16.0}, [](std::size_t) {});
  ctx.record_transfer(1e6, true);

  const auto doc = obs::Json::parse(obs::chrome_trace_json(buf));
  ASSERT_TRUE(doc.contains("traceEvents"));
  const auto& events = doc.at("traceEvents").items();
  // The export opens with the process_name/process_sort_index metadata
  // pair naming this buffer's rank, then one complete event per record.
  ASSERT_EQ(events.size(), buf.size() + 2);
  EXPECT_EQ(events[0].at("ph").as_string(), "M");
  EXPECT_EQ(events[0].at("name").as_string(), "process_name");
  EXPECT_EQ(events[1].at("name").as_string(), "process_sort_index");
  for (std::size_t i = 2; i < events.size(); ++i) {
    const auto& e = events[i];
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    EXPECT_FALSE(e.at("name").as_string().empty());
    EXPECT_TRUE(e.at("args").contains("bound"));
  }
  // ts/dur are microseconds of simulated time.
  EXPECT_NEAR(events[2].at("dur").as_number(),
              buf.snapshot()[0].duration * 1e6, 1e-6);
  EXPECT_EQ(doc.at("otherData").at("dropped_events").as_number(), 0.0);
}

TEST(Metrics, CounterGaugeHistogram) {
  obs::MetricsRegistry m;
  m.add("hits");
  m.add("hits", 2.0);
  m.set("temp", 19.0);
  m.set("temp", 21.5);
  m.observe("lat", 1.0);
  m.observe("lat", 3.0);
  EXPECT_DOUBLE_EQ(m.counter("hits"), 3.0);
  EXPECT_DOUBLE_EQ(m.counter("absent"), 0.0);
  EXPECT_DOUBLE_EQ(m.gauge("temp"), 21.5);
  const auto h = m.histogram("lat");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 4.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  m.clear();
  EXPECT_DOUBLE_EQ(m.counter("hits"), 0.0);
}

TEST(Metrics, JsonRoundTrip) {
  obs::MetricsRegistry m;
  m.add("a.count", 5.0);
  m.set("a.gauge", -2.5);
  m.observe("a.hist", 10.0);
  m.observe("a.hist", 30.0);
  const auto doc = obs::Json::parse(m.to_json());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("a.count").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("a.gauge").as_number(), -2.5);
  const auto& h = doc.at("histograms").at("a.hist");
  EXPECT_DOUBLE_EQ(h.at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(h.at("sum").as_number(), 40.0);
  EXPECT_DOUBLE_EQ(h.at("min").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(h.at("max").as_number(), 30.0);
}

TEST(Metrics, PublishedCountersMatchExecContext) {
  auto ctx = core::make_device();
  ctx.forall(500, {3.0, 24.0}, [](std::size_t) {});
  ctx.record_kernel({1e9, 1e7});
  ctx.record_transfer(2e6, true);
  ctx.record_transfer(3e6, false);

  obs::MetricsRegistry m;
  hsim::publish(m, "ctx", ctx.counters());
  const auto doc = obs::Json::parse(m.to_json());
  const auto& c = doc.at("counters");
  const auto& k = ctx.counters();
  EXPECT_DOUBLE_EQ(c.at("ctx.flops").as_number(), k.flops);
  EXPECT_DOUBLE_EQ(c.at("ctx.bytes").as_number(), k.bytes);
  EXPECT_DOUBLE_EQ(c.at("ctx.launches").as_number(),
                   static_cast<double>(k.launches));
  EXPECT_DOUBLE_EQ(c.at("ctx.transfers").as_number(),
                   static_cast<double>(k.transfers));
  EXPECT_DOUBLE_EQ(c.at("ctx.h2d_bytes").as_number(), k.h2d_bytes);
  EXPECT_DOUBLE_EQ(c.at("ctx.d2h_bytes").as_number(), k.d2h_bytes);
}

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,-3e2],"b":{"nested":true,"s":"q\"uo\nte"},"n":null})";
  const auto doc = obs::Json::parse(text);
  EXPECT_DOUBLE_EQ(doc.at("a").at(1).as_number(), 2.5);
  EXPECT_DOUBLE_EQ(doc.at("a").at(2).as_number(), -300.0);
  EXPECT_TRUE(doc.at("b").at("nested").as_bool());
  EXPECT_EQ(doc.at("b").at("s").as_string(), "q\"uo\nte");
  EXPECT_TRUE(doc.at("n").is_null());
  // Dump re-parses to the same values.
  const auto again = obs::Json::parse(doc.dump());
  EXPECT_EQ(again.dump(), doc.dump());
}

TEST(Json, MalformedInputsThrow) {
  EXPECT_THROW(obs::Json::parse("{"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("[1,]"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("{\"a\":1} trailing"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("\"bad\\escape\""), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("tru"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse(""), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("1e999"), obs::JsonError);  // non-finite
}

TEST(Publishers, MpiTrafficLandsInRegistry) {
  obs::MetricsRegistry m;
  mpi::RunOptions opts;
  opts.metrics = &m;
  const auto stats = mpi::run(4, opts, [](mpi::Communicator& comm) {
    if (comm.rank() != 0) comm.send(0, 1, {1.0, 2.0});
    if (comm.rank() == 0) {
      for (int r = 1; r < comm.size(); ++r) (void)comm.recv(r, 1);
    }
    comm.barrier();
    (void)comm.allreduce_sum(1.0);
  });
  EXPECT_DOUBLE_EQ(m.counter("mpi.runs"), 1.0);
  EXPECT_DOUBLE_EQ(m.counter("mpi.messages"),
                   static_cast<double>(stats.messages));
  EXPECT_DOUBLE_EQ(m.counter("mpi.bytes"), stats.bytes);
  EXPECT_DOUBLE_EQ(m.counter("mpi.allreduces"),
                   static_cast<double>(stats.allreduces));
  EXPECT_DOUBLE_EQ(m.counter("mpi.barriers"),
                   static_cast<double>(stats.barriers));
  EXPECT_DOUBLE_EQ(m.counter("mpi.rank_failures"), 0.0);
}

TEST(Publishers, SchedulerPublishesWaitsAndCounters) {
  obs::MetricsRegistry m;
  auto jobs = sched::make_workload({200, 30.0, 1.5, 0.0, 0.0, 3});
  sched::SchedulerConfig cfg{8, sched::Policy::Sjf, 0.0, 0};
  cfg.metrics = &m;
  const auto res = sched::Simulator(cfg).run(jobs);
  EXPECT_DOUBLE_EQ(m.counter("sched.jobs"), 200.0);
  EXPECT_DOUBLE_EQ(m.counter("sched.completed"),
                   static_cast<double>(res.completed));
  EXPECT_DOUBLE_EQ(m.gauge("sched.makespan"), res.makespan);
  EXPECT_DOUBLE_EQ(m.gauge("sched.utilization"), res.utilization);
  const auto h = m.histogram("sched.wait_s");
  EXPECT_EQ(h.count, res.completed);
  EXPECT_NEAR(h.mean(), res.mean_wait, 1e-9);
  EXPECT_NEAR(h.max, res.max_wait, 1e-9);
}

struct Blob : resil::Checkpointable {
  std::vector<double> v;
  void save_state(std::vector<double>& out) const override { out = v; }
  void restore_state(const std::vector<double>& in) override { v = in; }
};

TEST(Publishers, ResilientRunPublishesFaultAccounting) {
  obs::MetricsRegistry m;
  auto ctx = core::make_device();
  Blob app;
  app.v.assign(256, 1.0);
  resil::ResilienceConfig cfg;
  cfg.mtbf = 0.002;  // frequent faults against the simulated clock
  cfg.seed = 11;
  cfg.metrics = &m;
  const auto rep = resil::run_resilient(
      app, ctx, 200,
      [&](std::size_t) { ctx.record_kernel({1e7, 1e6}); }, cfg);
  ASSERT_TRUE(rep.completed);
  EXPECT_GT(rep.faults, 0u);
  EXPECT_DOUBLE_EQ(m.counter("resil.faults"),
                   static_cast<double>(rep.faults));
  EXPECT_DOUBLE_EQ(m.counter("resil.checkpoints"),
                   static_cast<double>(rep.checkpoints));
  EXPECT_DOUBLE_EQ(m.counter("resil.checkpoint_bytes"),
                   static_cast<double>(rep.checkpoints) * app.state_bytes());
  EXPECT_DOUBLE_EQ(m.counter("resil.steps_replayed"),
                   static_cast<double>(rep.steps_replayed));
  EXPECT_DOUBLE_EQ(m.counter("resil.wasted_s"), rep.wasted_time);
}

TEST(Reprice, TraceOnSameMachineReproducesSimTime) {
  auto ctx = core::make_device(hsim::machines::v100());
  obs::TraceBuffer buf;
  ctx.set_trace(&buf);
  ctx.set_phase("a");
  ctx.record_kernel({1e12, 1e9});  // compute-bound
  ctx.record_kernel({1e6, 1e9});   // memory-bound
  ctx.set_phase("b");
  ctx.record_transfer(1e8, true);
  const hsim::CostModel same(hsim::machines::v100());
  EXPECT_NEAR(hsim::reprice(buf, same), ctx.simulated_time(), 1e-12);
  // Phase filtering prices each phase separately; the parts sum to the
  // whole.
  const double a = hsim::reprice(buf, same, "a");
  const double b = hsim::reprice(buf, same, "b");
  EXPECT_NEAR(a + b, ctx.simulated_time(), 1e-12);
  EXPECT_GT(a, b);
}

}  // namespace
