// Kernel-fusion semantics (DESIGN.md section 11): the FusedRegion builder
// runs its stages in order once per index under a single launch charge,
// sums the stage workloads minus the elided intermediate traffic, and --
// because each stage touches only its own index -- leaves results bitwise
// identical to the unfused launches it replaces. The workload adoptions
// (CG, Cardioid) are checked end to end here.
#include <gtest/gtest.h>

#include <cstddef>
#include <tuple>
#include <utility>
#include <vector>

#include "core/coe.hpp"
#include "la/la.hpp"
#include "reaction/monodomain.hpp"

namespace {

using namespace coe;

TEST(Fusion, StagesRunInOrderPerIndex) {
  auto ctx = core::make_seq();
  const std::size_t n = 100;
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = static_cast<double>(i);
  ctx.fused(n)
      .then({1.0, 8.0}, [&](std::size_t i) { a[i] += 1.0; })
      .then({1.0, 16.0}, [&](std::size_t i) { b[i] = 2.0 * a[i]; })
      .launch();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(b[i], 2.0 * (static_cast<double>(i) + 1.0));
  }
}

TEST(Fusion, OneLaunchSummedWorkloadsElidedBytes) {
  auto ctx = core::make_device(hsim::machines::v100());
  const std::size_t n = 1000;
  std::vector<double> a(n, 1.0);
  ctx.fused(n)
      .then({2.0, 24.0}, [&](std::size_t i) { a[i] += 1.0; })
      .then({1.0, 16.0}, [&](std::size_t i) { a[i] *= 2.0; })
      .elide(8.0)
      .launch();
  EXPECT_EQ(ctx.counters().launches, 1u);
  EXPECT_DOUBLE_EQ(ctx.counters().flops, 3.0 * static_cast<double>(n));
  // 24 + 16 - 8 elided bytes per iteration.
  EXPECT_DOUBLE_EQ(ctx.counters().bytes, 32.0 * static_cast<double>(n));
}

TEST(Fusion, ElideClampsAtZero) {
  auto ctx = core::make_device(hsim::machines::v100());
  std::vector<double> a(10, 0.0);
  ctx.fused(a.size())
      .then({1.0, 8.0}, [&](std::size_t i) { a[i] += 1.0; })
      .elide(1e9)  // more than the stages carry: clamp, don't go negative
      .launch();
  EXPECT_DOUBLE_EQ(ctx.counters().bytes, 0.0);
  EXPECT_GE(ctx.simulated_time(), 0.0);
}

TEST(Fusion, FusedReduceMatchesSeparateLoops) {
  auto ctx = core::make_seq();
  const std::size_t n = 257;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.1 * static_cast<double>(i) + 0.3;
    y[i] = 1.0 / (static_cast<double>(i) + 1.0);
  }
  std::vector<double> xs = x;
  double expect = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] += 2.0 * y[i];
    expect += xs[i] * xs[i];
  }
  const double got = ctx.fused(n)
                         .then({2.0, 24.0},
                               [&](std::size_t i) { x[i] += 2.0 * y[i]; })
                         .reduce_sum({2.0, 16.0}, [&](std::size_t i) {
                           return x[i] * x[i];
                         });
  EXPECT_EQ(got, expect);  // bitwise: same order of operations
  EXPECT_EQ(x, xs);
}

TEST(Fusion, ThreeDimensionalRegionCoversEveryIndexOnce) {
  auto ctx = core::make_seq();
  const std::size_t ni = 3, nj = 4, nk = 5;
  std::vector<int> visits(ni * nj * nk, 0);
  std::vector<double> sum(ni * nj * nk, 0.0);
  ctx.fused3(ni, nj, nk)
      .then({1.0, 4.0},
            [&](std::size_t i, std::size_t j, std::size_t k) {
              ++visits[(i * nj + j) * nk + k];
            })
      .then({1.0, 8.0},
            [&](std::size_t i, std::size_t j, std::size_t k) {
              sum[(i * nj + j) * nk + k] =
                  static_cast<double>(i + 10 * j + 100 * k);
            })
      .launch();
  EXPECT_EQ(ctx.counters().launches, 1u);
  for (std::size_t i = 0; i < ni; ++i) {
    for (std::size_t j = 0; j < nj; ++j) {
      for (std::size_t k = 0; k < nk; ++k) {
        EXPECT_EQ(visits[(i * nj + j) * nk + k], 1);
        EXPECT_EQ(sum[(i * nj + j) * nk + k],
                  static_cast<double>(i + 10 * j + 100 * k));
      }
    }
  }
}

TEST(Fusion, CgFusedBitwiseIdenticalFewerLaunches) {
  // The fused CG iteration must reproduce the unfused solution bit for
  // bit (deterministic Seq backend) while launching strictly less and
  // finishing strictly sooner in simulated time.
  auto a = la::poisson2d(24, 24);
  la::CsrOperator op(a);
  la::JacobiPreconditioner jacobi(a);
  std::vector<double> b(a.rows(), 1.0);

  auto solve = [&](bool fused, std::vector<double>& x) {
    auto ctx = core::make_device(hsim::machines::v100());
    x.assign(a.rows(), 0.0);
    la::SolveOptions opts;
    opts.fused = fused;
    opts.max_iters = 60;
    opts.rel_tol = 1e-10;
    const auto res = la::cg(ctx, op, jacobi, b, x, opts);
    return std::tuple{res.iterations, ctx.counters().launches,
                      ctx.simulated_time()};
  };

  std::vector<double> x_unfused, x_fused;
  const auto [it0, launches0, sim0] = solve(false, x_unfused);
  const auto [it1, launches1, sim1] = solve(true, x_fused);
  EXPECT_EQ(it0, it1);
  EXPECT_EQ(x_unfused, x_fused);  // element-wise bitwise equality
  EXPECT_LT(launches1, launches0);
  EXPECT_LT(sim1, sim0);
}

TEST(Fusion, MonodomainFusedBitwiseIdenticalFewerLaunches) {
  auto run = [&](bool fuse, std::vector<double>& voltages) {
    auto dev = core::make_device(hsim::machines::v100());
    auto host = core::make_seq();
    reaction::TissueConfig cfg;
    cfg.nx = 24;
    cfg.ny = 24;
    cfg.rates = reaction::RateKind::Rational;
    cfg.fuse_reaction = fuse;
    reaction::Monodomain tissue(dev, host, cfg);
    tissue.stimulate(0, 8, 0, 8, 100.0, 1.0);
    tissue.run(2.0);
    voltages.clear();
    for (std::size_t i = 0; i < cfg.nx; ++i) {
      for (std::size_t j = 0; j < cfg.ny; ++j) {
        voltages.push_back(tissue.voltage(i, j));
      }
    }
    return std::pair{dev.counters().launches, dev.simulated_time()};
  };
  std::vector<double> v_unfused, v_fused;
  const auto [launches0, sim0] = run(false, v_unfused);
  const auto [launches1, sim1] = run(true, v_fused);
  EXPECT_EQ(v_unfused, v_fused);
  EXPECT_LT(launches1, launches0);
  EXPECT_LT(sim1, sim0);
}

TEST(Fusion, ThreadsBackendComputesSameResults) {
  // Fused stages under the thread pool: not a bitwise test (the guided
  // chunking is deterministic, but reductions on Threads order-vary), but
  // element-wise stage results must match the Seq backend exactly since
  // every index is independent.
  auto seq = core::make_seq();
  auto thr = core::make_threads();
  const std::size_t n = 10000;
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = b[i] = 0.25 * double(i);
  auto body = [](std::vector<double>& v) {
    return [&v](std::size_t i) { v[i] = v[i] * 1.5 + 2.0; };
  };
  seq.fused(n).then({2.0, 16.0}, body(a)).launch();
  thr.fused(n).then({2.0, 16.0}, body(b)).launch();
  EXPECT_EQ(a, b);
}

}  // namespace
