// Tests for the data-analytics module: digamma, corpus generation, LDA
// learning (perplexity decrease, topic recovery), and the Spark stage
// cost model (optimized stack beats default, >2x).
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/lda.hpp"
#include "analytics/spark.hpp"

namespace {

using namespace coe;

TEST(Digamma, MatchesKnownValues) {
  // digamma(1) = -gamma_E; digamma(0.5) = -gamma_E - 2 ln 2.
  const double gamma_e = 0.5772156649015329;
  EXPECT_NEAR(analytics::digamma(1.0), -gamma_e, 1e-10);
  EXPECT_NEAR(analytics::digamma(0.5), -gamma_e - 2.0 * std::log(2.0),
              1e-10);
  // Recurrence: psi(x+1) = psi(x) + 1/x.
  for (double x : {0.3, 1.7, 4.2}) {
    EXPECT_NEAR(analytics::digamma(x + 1.0),
                analytics::digamma(x) + 1.0 / x, 1e-10);
  }
}

TEST(Corpus, GeneratorShapes) {
  analytics::CorpusConfig cfg;
  cfg.vocab = 300;
  cfg.topics = 4;
  cfg.docs = 50;
  cfg.words_per_doc = 80;
  auto corpus = analytics::generate_corpus(cfg);
  EXPECT_EQ(corpus.docs.size(), 50u);
  EXPECT_EQ(corpus.true_beta.size(), 4u * 300u);
  for (std::size_t k = 0; k < 4; ++k) {
    double sum = 0.0;
    for (std::size_t w = 0; w < 300; ++w) sum += corpus.true_beta[k * 300 + w];
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  for (const auto& d : corpus.docs) {
    EXPECT_NEAR(d.total(), 80.0, 1e-9);
    for (auto w : d.words) EXPECT_LT(w, 300u);
  }
}

TEST(Lda, PerplexityDecreasesMonotonically) {
  analytics::CorpusConfig ccfg;
  ccfg.vocab = 200;
  ccfg.topics = 4;
  ccfg.docs = 80;
  ccfg.words_per_doc = 60;
  auto corpus = analytics::generate_corpus(ccfg);
  analytics::LdaConfig lcfg;
  lcfg.topics = 4;
  analytics::LdaModel model(corpus.vocab, lcfg);
  const double untrained = model.perplexity(corpus);
  auto trace = model.train(corpus, 12);
  // EM perplexity must improve substantially and (near) monotonically.
  EXPECT_LT(trace.back(), 0.5 * untrained);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LT(trace[i], trace[i - 1] * 1.02) << "iteration " << i;
  }
}

TEST(Lda, RecoversWellSeparatedTopics) {
  analytics::CorpusConfig ccfg;
  ccfg.vocab = 150;
  ccfg.topics = 3;
  ccfg.docs = 200;
  ccfg.words_per_doc = 120;
  ccfg.doc_alpha = 0.1;   // nearly single-topic documents
  ccfg.topic_eta = 0.02;  // very sparse topics
  auto corpus = analytics::generate_corpus(ccfg);
  analytics::LdaConfig lcfg;
  lcfg.topics = 3;
  analytics::LdaModel model(corpus.vocab, lcfg);
  model.train(corpus, 25);
  EXPECT_GT(analytics::topic_recovery_score(model, corpus), 0.7);
}

TEST(Lda, InferenceFavorsDominantTopic) {
  analytics::CorpusConfig ccfg;
  ccfg.vocab = 100;
  ccfg.topics = 2;
  ccfg.docs = 150;
  ccfg.words_per_doc = 100;
  ccfg.doc_alpha = 0.05;
  auto corpus = analytics::generate_corpus(ccfg);
  analytics::LdaConfig lcfg;
  lcfg.topics = 2;
  analytics::LdaModel model(corpus.vocab, lcfg);
  model.train(corpus, 20);
  // For most documents the inferred gamma should be clearly skewed.
  std::size_t skewed = 0;
  for (const auto& d : corpus.docs) {
    auto g = model.infer_document(d);
    const double frac = std::max(g[0], g[1]) / (g[0] + g[1]);
    skewed += frac > 0.7;
  }
  EXPECT_GT(skewed, corpus.docs.size() / 2);
}

TEST(Spark, OptimizedStackAtLeast2xOn32Nodes) {
  // Large-dictionary LDA: the K x V sufficient statistics dominate the
  // exchange (the Wikipedia run shuffles multi-GB statistics per node).
  analytics::LdaIterationProfile prof;
  prof.compute_flops_per_node = 2.0e12;
  prof.shuffle_bytes_per_pair = 150.0e6;
  prof.aggregate_bytes_per_node = 1.5e9;
  const auto node = hsim::machines::power9();
  const auto net = hsim::clusters::sierra(32);
  const auto def = analytics::cost_iteration(prof, analytics::default_stack(),
                                             node, net, 32);
  const auto opt = analytics::cost_iteration(
      prof, analytics::optimized_stack(), node, net, 32);
  EXPECT_GT(def.total(), 2.0 * opt.total());
  // Compute itself is unchanged -- only overheads shrink.
  EXPECT_NEAR(def.compute, opt.compute, 1e-12);
  EXPECT_GT(def.jvm, opt.jvm);
  EXPECT_GT(def.shuffle, opt.shuffle);
  EXPECT_GT(def.aggregate, opt.aggregate);
}

TEST(Spark, DefaultAggregateScalesWorseWithNodes) {
  analytics::LdaIterationProfile prof;
  prof.compute_flops_per_node = 1.0e12;
  prof.shuffle_bytes_per_pair = 10.0e6;
  prof.aggregate_bytes_per_node = 200.0e6;
  const auto node = hsim::machines::power9();
  auto ratio_at = [&](int nodes) {
    const auto net = hsim::clusters::sierra(nodes);
    const auto def = analytics::cost_iteration(
        prof, analytics::default_stack(), node, net, nodes);
    const auto opt = analytics::cost_iteration(
        prof, analytics::optimized_stack(), node, net, nodes);
    return def.aggregate / opt.aggregate;
  };
  // The scalability gap widens with node count (tree vs linear gather).
  EXPECT_GT(ratio_at(256), 2.0 * ratio_at(16));
}

}  // namespace
