// Stream semantics of the simulated clock (DESIGN.md section 11): per-
// stream ordering, the concurrent_kernels overlap bound, DMA engines,
// events, sync, stream-tagged traces, and streamed repricing. Numerics are
// never affected by streams -- only the accounting -- and the wave test at
// the bottom checks that end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/coe.hpp"
#include "obs/trace.hpp"
#include "stencil/wave.hpp"

namespace {

using namespace coe;

/// A flat test GPU: 1 GFLOP/s, 1 GB/s, 1 GB/s link, no overheads, so a
/// kernel of {t * 1e9, 0} or a transfer of t * 1e9 bytes takes exactly t
/// simulated seconds.
hsim::MachineModel test_gpu(int concurrent_kernels) {
  hsim::MachineModel m;
  m.name = "testgpu";
  m.kind = hsim::ProcessorKind::Gpu;
  m.peak_flops = 1e9;
  m.flop_efficiency = 1.0;
  m.mem_bw = 1e9;
  m.bw_efficiency = 1.0;
  m.launch_overhead = 0.0;
  m.concurrent_kernels = concurrent_kernels;
  m.link_bw = 1e9;
  m.link_latency = 0.0;
  return m;
}

/// A kernel that takes `ms` simulated milliseconds on test_gpu.
hsim::KernelCost kernel_ms(double ms) { return {ms * 1e6, 0.0}; }

TEST(Streams, DefaultStreamMatchesSerializedClock) {
  // Everything on the default stream serializes regardless of the
  // concurrency knob -- the pre-stream accounting, unchanged.
  auto ctx = core::make_device(test_gpu(8));
  ctx.record_kernel(kernel_ms(1.0));
  ctx.record_kernel(kernel_ms(2.0));
  ctx.record_transfer(3e6, true);
  ctx.record_kernel(kernel_ms(4.0));
  EXPECT_DOUBLE_EQ(ctx.simulated_time(), 10e-3);
  EXPECT_DOUBLE_EQ(ctx.timeline().total(), ctx.simulated_time());
}

TEST(Streams, KernelsOverlapAcrossStreams) {
  auto ctx = core::make_device(test_gpu(8));
  ctx.stream(0);
  ctx.record_kernel(kernel_ms(3.0));
  ctx.stream(1);
  ctx.record_kernel(kernel_ms(2.0));
  // Makespan is the longest stream; the timeline keeps busy time.
  EXPECT_DOUBLE_EQ(ctx.simulated_time(), 3e-3);
  EXPECT_DOUBLE_EQ(ctx.timeline().total(), 5e-3);
}

TEST(Streams, ConcurrentKernelsKnobBoundsOverlap) {
  // concurrent_kernels = 1: cross-stream kernels still serialize.
  auto serial = core::make_device(test_gpu(1));
  serial.stream(0);
  serial.record_kernel(kernel_ms(1.0));
  serial.stream(1);
  serial.record_kernel(kernel_ms(1.0));
  EXPECT_DOUBLE_EQ(serial.simulated_time(), 2e-3);

  // concurrent_kernels = 2 with three streams: the third kernel waits for
  // a slot.
  auto two = core::make_device(test_gpu(2));
  for (std::size_t s = 0; s < 3; ++s) {
    two.stream(s);
    two.record_kernel(kernel_ms(1.0));
  }
  EXPECT_DOUBLE_EQ(two.simulated_time(), 2e-3);
}

TEST(Streams, MakespanBounds) {
  // Round-robin kernels over three streams: the makespan never beats the
  // busiest stream and never loses to full serialization.
  const double ms[] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  auto ctx = core::make_device(test_gpu(8));
  double serialized = 0.0;
  double per_stream[3] = {0.0, 0.0, 0.0};
  for (int i = 0; i < 6; ++i) {
    ctx.stream(static_cast<std::size_t>(i % 3));
    ctx.record_kernel(kernel_ms(ms[i]));
    serialized += ms[i] * 1e-3;
    per_stream[i % 3] += ms[i] * 1e-3;
  }
  const double busiest = std::max({per_stream[0], per_stream[1],
                                   per_stream[2]});
  EXPECT_LE(ctx.simulated_time(), serialized);
  EXPECT_GE(ctx.simulated_time(), busiest);
  EXPECT_DOUBLE_EQ(ctx.timeline().total(), serialized);
}

TEST(Streams, TransfersAlwaysOverlapKernels) {
  // Even with concurrent_kernels = 1, the DMA engines are separate
  // resources: an upload on stream 1 hides under a kernel on stream 0.
  auto ctx = core::make_device(test_gpu(1));
  ctx.stream(0);
  ctx.record_kernel(kernel_ms(2.0));
  ctx.stream(1);
  ctx.record_transfer(2e6, true);
  EXPECT_DOUBLE_EQ(ctx.simulated_time(), 2e-3);
}

TEST(Streams, DmaEnginesPerDirection) {
  // h2d and d2h have an engine each: opposite directions overlap, same
  // direction serializes.
  auto both = core::make_device(test_gpu(8));
  both.stream(1);
  both.record_transfer(1e6, true);
  both.stream(2);
  both.record_transfer(1e6, false);
  EXPECT_DOUBLE_EQ(both.simulated_time(), 1e-3);

  auto same = core::make_device(test_gpu(8));
  same.stream(1);
  same.record_transfer(1e6, true);
  same.stream(2);
  same.record_transfer(1e6, true);
  EXPECT_DOUBLE_EQ(same.simulated_time(), 2e-3);
}

TEST(Streams, SyncJoinsAllStreams) {
  auto ctx = core::make_device(test_gpu(8));
  ctx.stream(0);
  ctx.record_kernel(kernel_ms(1.0));
  ctx.stream(1);
  ctx.record_kernel(kernel_ms(3.0));
  EXPECT_DOUBLE_EQ(ctx.sync(), 3e-3);
  // Work after the join starts at the joined time, even on a stream that
  // did not exist before the sync.
  ctx.stream(5);
  ctx.record_kernel(kernel_ms(1.0));
  EXPECT_DOUBLE_EQ(ctx.simulated_time(), 4e-3);
}

TEST(Streams, WaitEventOrdersAcrossStreams) {
  auto ctx = core::make_device(test_gpu(8));
  ctx.stream(0);
  ctx.record_kernel(kernel_ms(2.0));
  const auto done = ctx.record_event();
  ctx.stream(1);
  ctx.wait_event(done);
  ctx.record_kernel(kernel_ms(1.0));
  // Without the wait the kernels would overlap (makespan 2 ms); the event
  // serializes them.
  EXPECT_DOUBLE_EQ(ctx.simulated_time(), 3e-3);
}

TEST(Streams, TraceCarriesStreamIds) {
  obs::TraceBuffer buf(64);
  auto ctx = core::make_device(test_gpu(8));
  ctx.set_trace(&buf);
  ctx.stream(0);
  ctx.record_kernel(kernel_ms(1.0));
  ctx.stream(2);
  ctx.record_kernel(kernel_ms(1.0));
  ctx.stream(1);
  ctx.record_transfer(1e6, true);

  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].stream, 0);
  EXPECT_EQ(events[1].stream, 2);
  EXPECT_EQ(events[2].stream, 1);

  // Chrome export rows events by simulated stream.
  const std::string json = obs::chrome_trace_json(buf);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"stream\":2"), std::string::npos);
}

TEST(Streams, RepriceStreamedMatchesSimulatedClock) {
  // Replaying the trace through the same scheduling reproduces the
  // streamed makespan exactly (no mid-run waits in this scenario).
  const auto mach = test_gpu(2);
  obs::TraceBuffer buf(256);
  auto ctx = core::make_device(mach);
  ctx.set_trace(&buf);
  for (int i = 0; i < 9; ++i) {
    ctx.stream(static_cast<std::size_t>(i % 3));
    ctx.record_kernel(kernel_ms(1.0 + i));
    if (i % 2 == 0) ctx.record_transfer(1e6 * (i + 1), i % 4 == 0);
  }
  const hsim::CostModel cm(mach);
  EXPECT_DOUBLE_EQ(hsim::reprice_streamed(buf, cm), ctx.simulated_time());
  // The serialized repricing is an upper bound on the overlapped one.
  EXPECT_GE(hsim::reprice(buf, cm), hsim::reprice_streamed(buf, cm));
}

TEST(Streams, ResetClearsStreamState) {
  auto ctx = core::make_device(test_gpu(8));
  ctx.stream(3);
  ctx.record_kernel(kernel_ms(5.0));
  ctx.sync();
  ctx.reset();
  EXPECT_DOUBLE_EQ(ctx.simulated_time(), 0.0);
  ctx.stream(1);
  ctx.record_kernel(kernel_ms(1.0));
  EXPECT_DOUBLE_EQ(ctx.simulated_time(), 1e-3);
}

TEST(Streams, WaveStreamedBitwiseIdenticalAndFaster) {
  // The SW4 forcing-offload overlap: identical fields, strictly less
  // simulated time once the upload and shake map leave the critical path.
  const std::size_t n = 12;
  const int steps = 8;
  auto run = [&](bool use_streams, std::vector<double>& state) {
    auto ctx = core::make_device(hsim::machines::v100());
    stencil::WaveOptions opts;
    opts.forcing_on_device = false;
    opts.use_streams = use_streams;
    stencil::WaveSolver solver(ctx, n, n, n, 1.0, 1.0, opts);
    for (std::size_t s = 0; s < 256; ++s) {
      solver.add_source({s % n, (3 * s) % n, (7 * s) % n, 1.0, 2.0, 0.2});
    }
    const double dt = solver.stable_dt();
    for (int s = 0; s < steps; ++s) solver.step(dt);
    solver.save_state(state);
    return ctx.sync();
  };
  std::vector<double> serial_state, streamed_state;
  const double t_serial = run(false, serial_state);
  const double t_streamed = run(true, streamed_state);
  EXPECT_EQ(serial_state, streamed_state);
  EXPECT_LT(t_streamed, t_serial);
}

}  // namespace
