// Tests for coe::net: nonblocking point-to-point semantics, log-P
// collectives, halo aggregation, and the per-link occupancy repricer
// (DESIGN.md section 15).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/exec.hpp"
#include "la/csr.hpp"
#include "la/krylov.hpp"
#include "md/replicated.hpp"
#include "mpi/comm.hpp"
#include "net/net.hpp"
#include "stencil/distributed.hpp"

namespace {

using namespace coe;

hsim::ClusterModel test_cluster(double alpha, double beta) {
  hsim::ClusterModel cl;
  cl.name = "test";
  cl.nodes = 64;
  cl.alpha = alpha;
  cl.beta = beta;
  return cl;
}

// ---------------------------------------------------------------------------
// Nonblocking point-to-point.
// ---------------------------------------------------------------------------

TEST(Net, IrecvCompletesOutOfOrder) {
  // Two messages with distinct tags; the receiver waits them in the
  // opposite order from posting. Completion order is the wait order.
  mpi::run(2, [&](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, {7.0, 77.0});
      comm.send(1, 8, {8.0});
    } else {
      mpi::Request r7 = comm.irecv(0, 7);
      mpi::Request r8 = comm.irecv(0, 8);
      EXPECT_FALSE(r7.done());
      EXPECT_FALSE(r8.done());
      const auto m8 = comm.wait(r8);  // waited first though posted second
      ASSERT_EQ(m8.size(), 1u);
      EXPECT_DOUBLE_EQ(m8[0], 8.0);
      const auto m7 = comm.wait(r7);
      ASSERT_EQ(m7.size(), 2u);
      EXPECT_DOUBLE_EQ(m7[0], 7.0);
      EXPECT_DOUBLE_EQ(m7[1], 77.0);
      EXPECT_TRUE(r7.done());
      EXPECT_TRUE(r8.done());
    }
  });
}

TEST(Net, IsendRequestsAreBornComplete) {
  auto stats = mpi::run(2, [&](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      mpi::Request s = comm.isend(1, 3, {1.0, 2.0, 3.0});
      EXPECT_TRUE(s.done());  // eager substrate: deposited at post time
      EXPECT_TRUE(s.valid());
      comm.wait(s);  // waiting a complete request is a no-op
    } else {
      const auto m = comm.recv(0, 3);
      EXPECT_EQ(m.size(), 3u);
    }
  });
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_DOUBLE_EQ(stats.bytes, 3.0 * 8.0);
}

TEST(Net, WaitallMixesDoneAndPending) {
  mpi::run(2, [&](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<mpi::Request> rs;
      rs.push_back(comm.isend(1, 1, {10.0}));      // already done
      rs.push_back(comm.irecv(1, 2));              // pending
      rs.push_back(comm.isend(1, 3, {30.0}));      // already done
      rs.push_back(comm.irecv(1, 4));              // pending
      comm.waitall(rs);
      for (auto& r : rs) EXPECT_TRUE(r.done());
      ASSERT_EQ(rs[1].data().size(), 1u);
      EXPECT_DOUBLE_EQ(rs[1].data()[0], 2.0);
      ASSERT_EQ(rs[3].data().size(), 1u);
      EXPECT_DOUBLE_EQ(rs[3].data()[0], 4.0);
    } else {
      comm.send(0, 2, {2.0});
      comm.send(0, 4, {4.0});
      EXPECT_DOUBLE_EQ(comm.recv(0, 1)[0], 10.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 3)[0], 30.0);
    }
  });
}

TEST(Net, TestProbesWithoutBlocking) {
  mpi::run(2, [&](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      mpi::Request r = comm.irecv(1, 5);
      // Nothing sent yet: test() must fail without blocking.
      EXPECT_FALSE(comm.test(r));
      comm.send(1, 6, {0.0});  // release the sender
      const auto m = comm.wait(r);
      EXPECT_DOUBLE_EQ(m[0], 5.5);
    } else {
      comm.recv(0, 6);
      comm.send(0, 5, {5.5});
    }
  });
}

TEST(Net, AbortWakesPendingIrecv) {
  // Rank 0 parks in wait() on a message that never comes; rank 1 dies.
  // The pending irecv must wake with PeerFailure (not hang, not timeout),
  // and run() must rethrow rank 1's original error.
  std::atomic<bool> woke{false};
  EXPECT_THROW(
      mpi::run(2,
               [&](mpi::Communicator& comm) {
                 if (comm.rank() == 0) {
                   mpi::Request r = comm.irecv(1, 9);
                   try {
                     comm.wait(r);
                   } catch (const mpi::PeerFailure&) {
                     woke.store(true);
                     throw;
                   }
                 } else {
                   throw std::runtime_error("rank 1 failed");
                 }
               }),
      std::runtime_error);
  EXPECT_TRUE(woke.load());
}

TEST(Net, DeadlineExpiryRetriesBeforeCompleting) {
  // The sender stalls past the first deadline; the receiver's wait() must
  // burn at least one retry and still complete once the message lands.
  mpi::RunOptions opts;
  opts.timeout_seconds = 0.05;
  opts.max_retries = 8;
  opts.retry_backoff_seconds = 0.05;
  auto stats = mpi::run(2, opts, [&](mpi::Communicator& comm) {
    if (comm.rank() == 0) {
      mpi::Request r = comm.irecv(1, 11);
      const auto m = comm.wait(r);
      EXPECT_DOUBLE_EQ(m[0], 11.0);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      comm.send(0, 11, {11.0});
    }
  });
  EXPECT_GE(stats.retries, 1u);
}

// ---------------------------------------------------------------------------
// Collectives.
// ---------------------------------------------------------------------------

TEST(Net, AllreduceSumAllAlgorithmsCorrect) {
  // Integer-valued doubles sum exactly, so every algorithm must agree with
  // the analytic total on both power-of-two and ragged rank counts.
  const net::AllreduceAlgo algos[] = {
      net::AllreduceAlgo::Central, net::AllreduceAlgo::Naive,
      net::AllreduceAlgo::RecursiveDoubling, net::AllreduceAlgo::Ring};
  for (int ranks : {1, 2, 4, 7}) {
    for (auto algo : algos) {
      mpi::run(ranks, [&](mpi::Communicator& comm) {
        std::vector<double> v(5);
        for (std::size_t i = 0; i < v.size(); ++i) {
          v[i] = double(comm.rank() + 1) * double(i + 1);
        }
        net::allreduce_sum(comm, v, algo);
        const double rsum = double(ranks) * double(ranks + 1) / 2.0;
        for (std::size_t i = 0; i < v.size(); ++i) {
          EXPECT_DOUBLE_EQ(v[i], rsum * double(i + 1))
              << algo_name(algo) << " ranks=" << ranks << " i=" << i;
        }
        const double s =
            net::allreduce_sum(comm, double(comm.rank()), algo);
        EXPECT_DOUBLE_EQ(s, double(ranks) * double(ranks - 1) / 2.0);
      });
    }
  }
}

TEST(Net, AllreduceMaxAllAlgorithmsCorrect) {
  const net::AllreduceAlgo algos[] = {
      net::AllreduceAlgo::Central, net::AllreduceAlgo::Naive,
      net::AllreduceAlgo::RecursiveDoubling, net::AllreduceAlgo::Ring};
  for (auto algo : algos) {
    mpi::run(5, [&](mpi::Communicator& comm) {
      std::vector<double> v{double(comm.rank()), -double(comm.rank()),
                            3.5};
      net::allreduce_max(comm, v, algo);
      EXPECT_DOUBLE_EQ(v[0], 4.0) << algo_name(algo);
      EXPECT_DOUBLE_EQ(v[1], 0.0) << algo_name(algo);
      EXPECT_DOUBLE_EQ(v[2], 3.5) << algo_name(algo);
      const double m =
          net::allreduce_max(comm, double(comm.rank() * 2), algo);
      EXPECT_DOUBLE_EQ(m, 8.0) << algo_name(algo);
    });
  }
}

TEST(Net, AllreduceDeterministicAcrossRepeats) {
  // Non-commutative-looking FP inputs: every algorithm must produce the
  // same bits on every rank and on every repetition.
  for (auto algo : {net::AllreduceAlgo::RecursiveDoubling,
                    net::AllreduceAlgo::Ring, net::AllreduceAlgo::Naive}) {
    std::vector<double> first;
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<double> results(6, 0.0);
      std::atomic<int> slot{0};
      mpi::run(6, [&](mpi::Communicator& comm) {
        double v = 0.1 * double(comm.rank() + 1) + 1e-13;
        net::allreduce_sum(comm, std::span<double>(&v, 1), algo);
        results[std::size_t(slot.fetch_add(1))] = v;
      });
      for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[0], results[i]) << algo_name(algo);
      }
      if (rep == 0) {
        first = results;
      } else {
        EXPECT_EQ(first[0], results[0]) << algo_name(algo);
      }
    }
  }
}

TEST(Net, AllreduceMessageCountsMatchFormulas) {
  // Measured substrate traffic must equal the closed-form message counts
  // the ablation sweeps (O(P^2) naive vs O(P log P) recursive doubling).
  for (int ranks : {2, 4, 5, 7, 8}) {
    for (auto algo : {net::AllreduceAlgo::Naive,
                      net::AllreduceAlgo::RecursiveDoubling,
                      net::AllreduceAlgo::Ring}) {
      net::NetStats net_stats;
      std::mutex mtx;
      auto stats = mpi::run(ranks, [&](mpi::Communicator& comm) {
        std::vector<double> v(3, double(comm.rank()));
        net::NetStats local;
        net::allreduce_sum(comm, v, algo, &local);
        std::lock_guard<std::mutex> lk(mtx);
        net_stats.messages += local.messages;
        net_stats.bytes += local.bytes;
        net_stats.reductions += local.reductions;
      });
      const std::size_t expect = net::allreduce_messages(algo, ranks);
      EXPECT_EQ(stats.messages, expect)
          << algo_name(algo) << " ranks=" << ranks;
      EXPECT_EQ(net_stats.messages, expect)
          << algo_name(algo) << " ranks=" << ranks;
      EXPECT_EQ(net_stats.reductions, std::size_t(ranks));
      EXPECT_EQ(stats.allreduces, 0u);  // no shared-buffer collective used
    }
  }
  // Growth classes: at 64 ranks naive is O(P^2), rd is O(P log P).
  const auto naive64 =
      net::allreduce_messages(net::AllreduceAlgo::Naive, 64);
  const auto rd64 =
      net::allreduce_messages(net::AllreduceAlgo::RecursiveDoubling, 64);
  EXPECT_EQ(naive64, std::size_t(64 * 63));
  EXPECT_EQ(rd64, std::size_t(64 * 6));
  EXPECT_GT(naive64, 10 * rd64);
}

TEST(Net, SelectAllreducePicksLatencyThenBandwidth) {
  // High-latency fabric: small vectors are latency-bound so the log2(P)
  // round count wins; large vectors are bandwidth-bound so the ring's
  // 2(P-1)/P byte volume wins.
  const auto cl = test_cluster(1e-5, 1e-9);
  EXPECT_EQ(net::select_allreduce(cl, 8, 64),
            net::AllreduceAlgo::RecursiveDoubling);
  EXPECT_EQ(net::select_allreduce(cl, 64 << 20, 64),
            net::AllreduceAlgo::Ring);
  // The pick must be the argmin of the modeled times it chooses between.
  for (std::size_t bytes : {8u, 1024u, 1u << 16, 1u << 24}) {
    const auto pick = net::select_allreduce(cl, bytes, 32);
    const double t = net::modeled_allreduce(pick, cl, bytes, 32);
    EXPECT_LE(t, net::modeled_allreduce(
                     net::AllreduceAlgo::RecursiveDoubling, cl, bytes, 32));
    EXPECT_LE(t, net::modeled_allreduce(net::AllreduceAlgo::Ring, cl,
                                        bytes, 32));
  }
}

// ---------------------------------------------------------------------------
// Halo aggregation.
// ---------------------------------------------------------------------------

TEST(Net, HaloPlanExchangesAggregatedFaces) {
  // Two ranks, one neighbor each, two faces per direction packed into one
  // message each way. Field layout per rank: [g0 g1 | i0 i1 i2 i3 | g2 g3].
  auto stats = mpi::run(2, [&](mpi::Communicator& comm) {
    const int r = comm.rank();
    std::vector<double> field(8, 0.0);
    for (std::size_t i = 2; i < 6; ++i) {
      field[i] = 100.0 * double(r) + double(i);
    }
    net::HaloPlan plan;
    const int nb = plan.add_neighbor(1 - r, /*send_tag=*/40 + r,
                                     /*recv_tag=*/40 + (1 - r));
    plan.add_send(nb, 2, 1);  // first interior cell
    plan.add_send(nb, 5, 1);  // last interior cell
    plan.add_recv(nb, 0, 1);
    plan.add_recv(nb, 1, 1);
    EXPECT_EQ(plan.neighbor_count(), 1u);
    EXPECT_EQ(plan.send_doubles(), 2u);
    plan.exchange(comm, field);
    // Peer's interior edge cells land in our ghosts, in face order.
    EXPECT_DOUBLE_EQ(field[0], 100.0 * double(1 - r) + 2.0);
    EXPECT_DOUBLE_EQ(field[1], 100.0 * double(1 - r) + 5.0);
    EXPECT_EQ(plan.stats().exchanges, 1u);
    EXPECT_EQ(plan.stats().messages, 1u);  // ONE coalesced message
    EXPECT_DOUBLE_EQ(plan.stats().bytes, 2.0 * 8.0);
  });
  EXPECT_EQ(stats.messages, 2u);  // one per rank
}

TEST(Net, HaloPlanBeginFinishOverlapsAndPacksAtBegin) {
  mpi::run(2, [&](mpi::Communicator& comm) {
    const int r = comm.rank();
    std::vector<double> field(4, double(r + 1));
    net::HaloPlan plan;
    const int nb = plan.add_neighbor(1 - r, 50 + r, 50 + (1 - r));
    plan.add_send(nb, 1, 2);
    plan.add_recv(nb, 0, 1);
    plan.add_recv(nb, 3, 1);
    plan.begin(comm, field);
    // Packing happened at begin(): mutating the send faces now must not
    // leak into what the peer receives.
    field[1] = field[2] = -99.0;
    // Re-entering begin while an exchange is in flight is a caller bug.
    EXPECT_THROW(plan.begin(comm, field), std::logic_error);
    plan.finish(comm, field);
    EXPECT_DOUBLE_EQ(field[0], double((1 - r) + 1));
    EXPECT_DOUBLE_EQ(field[3], double((1 - r) + 1));
  });
}

TEST(Net, HaloPlanSizeMismatchThrows) {
  // The receiver expects 3 doubles but the peer's plan sends 2: finish()
  // must throw rather than silently scatter a short message.
  EXPECT_THROW(mpi::run(2,
                        [&](mpi::Communicator& comm) {
                          const int r = comm.rank();
                          std::vector<double> field(8, 0.0);
                          net::HaloPlan plan;
                          const int nb = plan.add_neighbor(
                              1 - r, 60 + r, 60 + (1 - r));
                          plan.add_send(nb, 0, 2);
                          plan.add_recv(nb, 4, r == 0 ? 3 : 2);
                          plan.exchange(comm, field);
                        }),
               std::runtime_error);
}

TEST(Net, HaloPlanFourNeighborRing) {
  // 4 ranks in a periodic ring, left+right neighbors, 2 faces each: the
  // aggregated plan sends exactly 2 messages per rank per exchange.
  auto stats = mpi::run(4, [&](mpi::Communicator& comm) {
    const int r = comm.rank();
    const int p = comm.size();
    const int left = (r + p - 1) % p;
    const int right = (r + 1) % p;
    // Layout: [L0 L1 | i0 i1 i2 i3 | R0 R1].
    std::vector<double> field(8, 0.0);
    for (std::size_t i = 2; i < 6; ++i) field[i] = 10.0 * r + double(i);
    net::HaloPlan plan;
    const int nl = plan.add_neighbor(left, /*send*/ 70, /*recv*/ 71);
    plan.add_send(nl, 2, 1);
    plan.add_send(nl, 3, 1);
    plan.add_recv(nl, 0, 2);
    const int nr = plan.add_neighbor(right, 71, 70);
    plan.add_send(nr, 4, 1);
    plan.add_send(nr, 5, 1);
    plan.add_recv(nr, 6, 2);
    plan.exchange(comm, field);
    EXPECT_DOUBLE_EQ(field[0], 10.0 * left + 4.0);
    EXPECT_DOUBLE_EQ(field[1], 10.0 * left + 5.0);
    EXPECT_DOUBLE_EQ(field[6], 10.0 * right + 2.0);
    EXPECT_DOUBLE_EQ(field[7], 10.0 * right + 3.0);
    EXPECT_EQ(plan.stats().messages, 2u);
  });
  EXPECT_EQ(stats.messages, 8u);  // 4 ranks x 2 coalesced messages
}

// ---------------------------------------------------------------------------
// Repricing.
// ---------------------------------------------------------------------------

TEST(Net, RepriceOverlapHidesTransferBehindCompute) {
  // Rank 0 posts a send then computes; rank 1 computes then waits. The
  // compute interval hides the transfer, so the timeline beats the
  // sequentialized bound while never dipping below the compute floor.
  const auto cl = test_cluster(1e-6, 1e-9);
  const double bytes = 1e6;  // 1 ms transfer at 1 GB/s
  const double work = 5e-3;  // 5 ms of compute on both ranks
  net::NetLog log;
  net::RankLogger r0(&log, 0), r1(&log, 1);
  r0.send(1, 1, bytes, /*blocking=*/false);
  r0.compute(work);
  r1.compute(work);
  r1.recv(0, 1, bytes);
  const auto rr = net::reprice(log, cl, 2);
  EXPECT_TRUE(rr.well_formed);
  EXPECT_EQ(rr.messages, 1u);
  EXPECT_DOUBLE_EQ(rr.bytes, bytes);
  EXPECT_GE(rr.timeline_s, rr.compute_s);
  EXPECT_LT(rr.timeline_s, rr.sequential_s);
  EXPECT_GT(rr.speedup(), 1.0);
  // The transfer is fully hidden: timeline ~ compute + ejection drain.
  EXPECT_LT(rr.timeline_s, work + 2e-3);
}

TEST(Net, RepriceBlockingSendStallsSender) {
  // The same traffic with a synchronous send: the sender's program clock
  // must ride through the injection, serializing send before compute.
  const auto cl = test_cluster(1e-6, 1e-9);
  const double bytes = 4e6;   // 4 ms through the injection engine
  const double work = 1e-2;   // sender-side compute dominates the makespan
  auto makespan = [&](bool blocking) {
    net::NetLog log;
    net::RankLogger r0(&log, 0), r1(&log, 1);
    r0.send(1, 1, bytes, blocking);
    r0.compute(work);
    r1.compute(1e-3);
    r1.recv(0, 1, bytes);
    const auto rr = net::reprice(log, cl, 2);
    EXPECT_TRUE(rr.well_formed);
    return rr.timeline_s;
  };
  // Blocking: inject (4 ms) then compute (10 ms). Posted: alpha + 10 ms.
  EXPECT_GT(makespan(true), makespan(false) + 3e-3);
}

TEST(Net, RepriceCollectiveSynchronizesRanks) {
  const auto cl = test_cluster(1e-6, 1e-9);
  net::NetLog log;
  net::RankLogger r0(&log, 0), r1(&log, 1), r2(&log, 2);
  r0.compute(1e-3);
  r0.allreduce(800.0);
  r1.allreduce(800.0);
  r2.compute(3e-3);
  r2.allreduce(800.0);
  const auto rr = net::reprice(log, cl, 3);
  EXPECT_TRUE(rr.well_formed);
  // Everyone leaves the collective no earlier than the slowest entrant
  // plus the analytic collective cost.
  EXPECT_GE(rr.timeline_s, 3e-3 + cl.allreduce(800, 3));
}

TEST(Net, RepriceDeadlockIsNotWellFormed) {
  const auto cl = test_cluster(1e-6, 1e-9);
  net::NetLog log;
  net::RankLogger r0(&log, 0), r1(&log, 1);
  r0.recv(1, 1, 100.0);  // no matching send anywhere
  r1.compute(1e-3);
  const auto rr = net::reprice(log, cl, 2);
  EXPECT_FALSE(rr.well_formed);
}

TEST(Net, RepriceBisectionFloorBindsTaperedFabrics) {
  // A fabric with 10% bisection: midpoint-crossing traffic is floored by
  // bytes / (bisection_factor * inj_bw * ranks/2) even though per-link
  // occupancy would finish sooner.
  auto cl = test_cluster(1e-6, 1e-9);
  cl.bisection_factor = 0.1;
  const double bytes = 8e6;
  net::NetLog log;
  net::RankLogger r0(&log, 0), r1(&log, 1);
  r0.send(1, 1, bytes, false);
  r1.recv(0, 1, bytes);
  const auto rr = net::reprice(log, cl, 2);
  EXPECT_TRUE(rr.well_formed);
  EXPECT_GT(rr.bisection_floor_s, 0.0);
  EXPECT_DOUBLE_EQ(rr.timeline_s, rr.bisection_floor_s);
  // Full-bisection fabric with the same traffic is not floored.
  auto full = cl;
  full.bisection_factor = 1.0;
  const auto rf = net::reprice(log, full, 2);
  EXPECT_LT(rf.timeline_s, rr.timeline_s);
}

// ---------------------------------------------------------------------------
// Driver integration: stencil, CG, MD.
// ---------------------------------------------------------------------------

TEST(Net, DistributedWaveBitIdenticalAcrossCommModes) {
  // Aggregation and overlap are pure communication-schedule changes; the
  // produced field must be bitwise identical across the 2x2 matrix, while
  // aggregation halves the halo message count.
  stencil::DistributedWaveConfig cfg;
  cfg.nx = 16;
  cfg.ny = 8;
  cfg.nz = 8;
  cfg.steps = 6;
  auto u0 = [](double x, double y, double z) {
    return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
  };
  std::vector<std::vector<double>> fields;
  std::vector<net::HaloStats> halos;
  for (bool aggregate : {true, false}) {
    for (bool overlap : {true, false}) {
      cfg.aggregate_halos = aggregate;
      cfg.overlap = overlap;
      auto res = stencil::distributed_wave_run(4, cfg, u0);
      fields.push_back(std::move(res.field));
      halos.push_back(res.halo);
    }
  }
  for (std::size_t i = 1; i < fields.size(); ++i) {
    EXPECT_EQ(fields[0], fields[i]) << "mode " << i;
  }
  // fields[0..1] aggregated, fields[2..3] not: half the messages, same
  // bytes (the payload does not change, only the coalescing).
  EXPECT_EQ(halos[0].messages * 2, halos[2].messages);
  EXPECT_DOUBLE_EQ(halos[0].bytes, halos[2].bytes);
}

TEST(Net, DistributedWaveRepriceShowsOverlapWin) {
  stencil::DistributedWaveConfig cfg;
  cfg.nx = 16;
  cfg.ny = 8;
  cfg.nz = 8;
  cfg.steps = 4;
  const auto cl = test_cluster(5e-6, 1e-9);
  cfg.cluster = &cl;
  auto u0 = [](double x, double, double) { return std::sin(M_PI * x); };
  auto res = stencil::distributed_wave_run(4, cfg, u0);
  EXPECT_TRUE(res.modeled.well_formed);
  EXPECT_GT(res.modeled.messages, 0u);
  EXPECT_GT(res.modeled.timeline_s, 0.0);
  EXPECT_LE(res.modeled.timeline_s, res.modeled.sequential_s);
  EXPECT_GE(res.modeled.speedup(), 1.0);

  cfg.aggregate_halos = false;
  cfg.overlap = false;
  auto base = stencil::distributed_wave_run(4, cfg, u0);
  EXPECT_TRUE(base.modeled.well_formed);
  EXPECT_EQ(res.field, base.field);  // numerics unchanged by scheduling
  // Aggregation + overlap must not model slower than neither.
  EXPECT_LE(res.modeled.timeline_s, base.modeled.timeline_s);
}

TEST(Net, CgReduceHookMatchesSingleDomainBitwise) {
  // Four ranks each solve the identical system; the reduce hook allreduces
  // (sum of four identical values = 4v exactly) and rescales by 1/4 (a
  // power of two, exact). Every rank must reproduce the hook-free solve
  // bit for bit, proving the hook sits at exactly the right points.
  auto a = la::poisson2d(16, 16);
  la::CsrOperator op(a);
  la::JacobiPreconditioner jacobi(a);
  std::vector<double> b(a.rows(), 1.0);

  auto ctx0 = core::make_seq();
  std::vector<double> x_ref(a.rows(), 0.0);
  la::SolveOptions opts;
  opts.max_iters = 80;
  opts.rel_tol = 1e-10;
  const auto ref = la::cg(ctx0, op, jacobi, b, x_ref, opts);
  EXPECT_GT(ref.reductions, 0u);  // rounds are counted even without a hook

  const int ranks = 4;
  std::vector<std::vector<double>> xs(ranks);
  std::vector<std::size_t> reductions(ranks, 0);
  mpi::run(ranks, [&](mpi::Communicator& comm) {
    auto ctx = core::make_seq();
    auto& x = xs[std::size_t(comm.rank())];
    x.assign(a.rows(), 0.0);
    la::SolveOptions dopts = opts;
    dopts.reduce = [&](std::span<double> vals) {
      net::allreduce_sum(comm, vals,
                         net::AllreduceAlgo::RecursiveDoubling);
      for (auto& v : vals) v *= 0.25;
    };
    const auto res = la::cg(ctx, op, jacobi, b, x, dopts);
    EXPECT_EQ(res.iterations, ref.iterations);
    EXPECT_EQ(res.reductions, ref.reductions);  // same round structure
    reductions[std::size_t(comm.rank())] = res.reductions;
  });
  for (int r = 0; r < ranks; ++r) {
    EXPECT_EQ(xs[std::size_t(r)], x_ref) << "rank " << r;
    EXPECT_GT(reductions[std::size_t(r)], 0u);
  }
}

TEST(Net, CgFusedReductionsBitwiseIdenticalHalvesRounds) {
  auto a = la::poisson2d(20, 20);
  la::CsrOperator op(a);
  la::JacobiPreconditioner jacobi(a);
  std::vector<double> b(a.rows(), 1.0);

  auto solve = [&](bool fuse, std::vector<double>& x) {
    auto ctx = core::make_seq();
    x.assign(a.rows(), 0.0);
    la::SolveOptions opts;
    opts.max_iters = 80;
    opts.rel_tol = 1e-10;
    opts.fused_reductions = fuse;
    opts.reduce = [](std::span<double>) {};  // count-only hook
    return la::cg(ctx, op, jacobi, b, x, opts);
  };
  std::vector<double> x2, x1;
  const auto two_round = solve(false, x2);
  const auto one_round = solve(true, x1);
  EXPECT_EQ(two_round.iterations, one_round.iterations);
  EXPECT_EQ(x2, x1);  // element-wise bitwise equality
  // Two rounds (pap; rr) + separate rz round vs pap + one fused pair:
  // 3 rounds/iter drop to 2 (plus the init rounds shrinking 2 -> 1).
  EXPECT_LT(one_round.reductions, two_round.reductions);
  // Init: 2 rounds (r.z, then ||r||^2) vs 1 fused pair. Per iteration:
  // pap + ||r||^2 + r.z vs pap + fused pair — except the converging
  // iteration, which breaks before the two-round path's r.z round.
  const std::size_t it = two_round.iterations;
  EXPECT_EQ(two_round.reductions, 1 + 3 * it);
  EXPECT_EQ(one_round.reductions, 1 + 2 * it);
}

TEST(Net, CgFusedReductionsAlsoExactUnderKernelFusion) {
  // fused (kernel launches) and fused_reductions (collective rounds) are
  // orthogonal; combined they must still match the plain solve bitwise.
  auto a = la::poisson2d(12, 12);
  la::CsrOperator op(a);
  la::JacobiPreconditioner jacobi(a);
  std::vector<double> b(a.rows(), 1.0);
  auto solve = [&](bool fuse_kernels, bool fuse_rounds,
                   std::vector<double>& x) {
    auto ctx = core::make_seq();
    x.assign(a.rows(), 0.0);
    la::SolveOptions opts;
    opts.max_iters = 60;
    opts.rel_tol = 1e-10;
    opts.fused = fuse_kernels;
    opts.fused_reductions = fuse_rounds;
    return la::cg(ctx, op, jacobi, b, x, opts);
  };
  std::vector<double> x00, x01, x10, x11;
  solve(false, false, x00);
  solve(false, true, x01);
  solve(true, false, x10);
  solve(true, true, x11);
  EXPECT_EQ(x00, x01);
  EXPECT_EQ(x00, x10);
  EXPECT_EQ(x00, x11);
}

TEST(Net, ReplicatedMdAggregatedMatchesSeparateBitwise) {
  // One (3n+2)-wide allreduce vs five rounds: with a rank-count-only
  // reduction tree both forms associate every element identically, so the
  // trajectories must be bitwise equal while collective rounds drop 5x.
  md::ReplicatedConfig cfg;
  cfg.per_side = 4;
  cfg.steps = 8;
  cfg.aggregate = true;
  const auto agg = md::replicated_md_run(3, cfg);
  cfg.aggregate = false;
  const auto sep = md::replicated_md_run(3, cfg);
  EXPECT_EQ(agg.n, sep.n);
  EXPECT_EQ(agg.potential, sep.potential);  // bitwise
  EXPECT_EQ(agg.kinetic, sep.kinetic);
  EXPECT_EQ(agg.virial, sep.virial);
  EXPECT_EQ(agg.reductions_per_step, 1u);
  EXPECT_EQ(sep.reductions_per_step, 5u);
  EXPECT_EQ(agg.net.reductions * 5, sep.net.reductions);
  EXPECT_LT(agg.net.messages, sep.net.messages);
  // Same payload travels either way (forces + energy + virial).
  EXPECT_DOUBLE_EQ(agg.net.bytes, sep.net.bytes);
}

TEST(Net, ReplicatedMdConservesAndMatchesSingleRank) {
  md::ReplicatedConfig cfg;
  cfg.per_side = 4;
  cfg.steps = 10;
  const auto one = md::replicated_md_run(1, cfg);
  const auto four = md::replicated_md_run(4, cfg);
  EXPECT_EQ(one.n, four.n);
  // Different partial-sum association across rank counts: equal to
  // rounding, not bitwise.
  const double e1 = one.potential + one.kinetic;
  const double e4 = four.potential + four.kinetic;
  EXPECT_NEAR(e4, e1, 1e-8 * std::abs(e1) + 1e-10);
  EXPECT_NEAR(four.temperature, one.temperature, 1e-9);
  EXPECT_EQ(one.net.messages, 0u);  // single rank: tree sends nothing
}

}  // namespace
