// Tests for the VBL module: FFT correctness (vs naive DFT, round trip,
// Parseval), transpose variants, split-step physics (power conservation,
// Gaussian spreading vs the analytic Rayleigh range, gain, defect ripples),
// and the GPUDirect/cudaMemcpy crossover model.
#include <gtest/gtest.h>

#include <cmath>

#include "beamline/vbl.hpp"
#include "core/rng.hpp"

namespace {

using namespace coe;
using beamline::cplx;

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<cplx> a(n);
  for (auto& v : a) v = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return a;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto a = random_signal(n, n);
  auto ref = beamline::dft_reference(a, false);
  auto ctx = core::make_seq();
  beamline::fft(ctx, a, false);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(a[k].real(), ref[k].real(), 1e-9) << "n=" << n << " k=" << k;
    EXPECT_NEAR(a[k].imag(), ref[k].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersAndNot, FftSizes,
                         ::testing::Values(1, 2, 8, 16, 64, 3, 5, 12, 100));

TEST(Fft, RoundTripIsIdentity) {
  for (std::size_t n : {16u, 48u, 128u}) {
    auto a = random_signal(n, 3 * n);
    const auto orig = a;
    auto ctx = core::make_seq();
    beamline::fft(ctx, a, false);
    beamline::fft(ctx, a, true);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(a[k].real(), orig[k].real(), 1e-10);
      EXPECT_NEAR(a[k].imag(), orig[k].imag(), 1e-10);
    }
  }
}

TEST(Fft, ParsevalHolds) {
  const std::size_t n = 256;
  auto a = random_signal(n, 9);
  double time_energy = 0.0;
  for (const auto& v : a) time_energy += std::norm(v);
  auto ctx = core::make_seq();
  beamline::fft(ctx, a, false);
  double freq_energy = 0.0;
  for (const auto& v : a) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * freq_energy);
}

TEST(Fft, LinearityAndDelta) {
  // FFT of a delta is all-ones.
  std::vector<cplx> d(32, cplx(0, 0));
  d[0] = cplx(1, 0);
  auto ctx = core::make_seq();
  beamline::fft(ctx, d, false);
  for (const auto& v : d) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Transpose, TiledMatchesNaive) {
  const std::size_t rows = 37, cols = 53;
  auto in = random_signal(rows * cols, 17);
  std::vector<cplx> t1, t2;
  auto ctx = core::make_seq();
  beamline::transpose(ctx, in, t1, rows, cols, beamline::TransposeKind::Naive);
  beamline::transpose(ctx, in, t2, rows, cols, beamline::TransposeKind::Tiled);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t k = 0; k < t1.size(); ++k) EXPECT_EQ(t1[k], t2[k]);
  // Spot-check the math.
  EXPECT_EQ(t1[5 * rows + 3], in[3 * cols + 5]);
}

TEST(Transpose, NaiveChargesMoreTraffic) {
  auto in = random_signal(64 * 64, 23);
  std::vector<cplx> out;
  auto c1 = core::make_device();
  auto c2 = core::make_device();
  beamline::transpose(c1, in, out, 64, 64, beamline::TransposeKind::Naive);
  beamline::transpose(c2, in, out, 64, 64, beamline::TransposeKind::Tiled);
  EXPECT_GT(c1.counters().bytes, c2.counters().bytes);
}

TEST(Fft2d, MatchesSeparableDft) {
  const std::size_t n = 16;
  auto a = random_signal(n * n, 31);
  auto expect = a;
  // Rows then columns with the reference DFT.
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<cplx> row(expect.begin() + static_cast<std::ptrdiff_t>(r * n),
                          expect.begin() +
                              static_cast<std::ptrdiff_t>((r + 1) * n));
    auto fr = beamline::dft_reference(row, false);
    std::copy(fr.begin(), fr.end(),
              expect.begin() + static_cast<std::ptrdiff_t>(r * n));
  }
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<cplx> col(n);
    for (std::size_t r = 0; r < n; ++r) col[r] = expect[r * n + c];
    auto fc = beamline::dft_reference(col, false);
    for (std::size_t r = 0; r < n; ++r) expect[r * n + c] = fc[r];
  }
  auto ctx = core::make_seq();
  beamline::fft2d(ctx, a, n, false);
  for (std::size_t k = 0; k < n * n; ++k) {
    EXPECT_NEAR(a[k].real(), expect[k].real(), 1e-9);
    EXPECT_NEAR(a[k].imag(), expect[k].imag(), 1e-9);
  }
}

TEST(Vbl, FreeSpacePowerConserved) {
  auto ctx = core::make_seq();
  beamline::VblConfig cfg;
  cfg.n = 64;
  beamline::Beamline beam(ctx, cfg);
  beam.set_gaussian(0.002);
  const double p0 = beam.total_power();
  beam.propagate(2.0);
  EXPECT_NEAR(beam.total_power(), p0, 1e-9 * p0);
}

TEST(Vbl, GaussianSpreadsAtRayleighRate) {
  auto ctx = core::make_seq();
  beamline::VblConfig cfg;
  cfg.n = 128;
  cfg.physical_size = 0.02;
  cfg.dz = 0.5;
  beamline::Beamline beam(ctx, cfg);
  const double w0 = 0.001;
  beam.set_gaussian(w0);
  const double width0 = beam.beam_width();
  const double k0 = 2.0 * M_PI / cfg.wavelength;
  const double zr = 0.5 * k0 * w0 * w0;  // Rayleigh range
  beam.propagate(2.0 * zr);
  // w(z)/w(0) = sqrt(1 + (z/zR)^2) = sqrt(5) at z = 2 zR.
  EXPECT_NEAR(beam.beam_width() / width0, std::sqrt(5.0), 0.1);
}

TEST(Vbl, AmplifierAddsPowerUntilSaturation) {
  auto ctx = core::make_seq();
  beamline::VblConfig cfg;
  cfg.n = 32;
  cfg.gain0 = 1.0;
  cfg.i_sat = 0.5;
  beamline::Beamline beam(ctx, cfg);
  beam.set_gaussian(0.002, 0.1);
  const double p0 = beam.total_power();
  beam.step();
  const double p1 = beam.total_power();
  EXPECT_GT(p1, p0);
  // Gain per unit power shrinks as intensity approaches saturation.
  beamline::Beamline hot(ctx, cfg);
  hot.set_gaussian(0.002, 10.0);
  const double h0 = hot.total_power();
  hot.step();
  EXPECT_LT(hot.total_power() / h0, p1 / p0);
}

TEST(Vbl, PhaseDefectsCreateDownstreamRipples) {
  // The Figure 9 experiment: two small phase defects grow fluence ripples
  // after propagation; a clean beam does not.
  auto run = [](bool defects) {
    auto ctx = core::make_seq();
    beamline::VblConfig cfg;
    cfg.n = 128;
    cfg.physical_size = 0.01;
    cfg.dz = 1.0;
    beamline::Beamline beam(ctx, cfg);
    beam.set_gaussian(0.003);
    if (defects) {
      beam.add_phase_defect(0.004, 0.004, 150e-6, M_PI / 2);
      beam.add_phase_defect(0.0055, 0.0045, 150e-6, M_PI / 2);
    }
    beam.propagate(10.0);
    return beam.fluence_contrast();
  };
  const double clean = run(false);
  const double rippled = run(true);
  EXPECT_GT(rippled, 1.05 * clean);
}

TEST(Transfers, CrossoverPointsMatchPaper) {
  const auto gd_h2d = beamline::gpudirect_h2d();
  const auto gd_d2h = beamline::gpudirect_d2h();
  const auto mc = beamline::cudamemcpy_path();
  const double h2d_cross = beamline::crossover_bytes(gd_h2d, mc);
  const double d2h_cross = beamline::crossover_bytes(gd_d2h, mc);
  // "cudaMemcpy ... will overtake GPUDirect for transfers of a few
  // kilobytes or more [H2D]; and ... a few hundred bytes or more [D2H]."
  EXPECT_GT(h2d_cross, 1024.0);
  EXPECT_LT(h2d_cross, 16.0 * 1024.0);
  EXPECT_GT(d2h_cross, 100.0);
  EXPECT_LT(d2h_cross, 1024.0);
  // Below the crossover GPUDirect wins; above, memcpy wins.
  EXPECT_LT(gd_h2d.time(256), mc.time(256));
  EXPECT_GT(gd_h2d.time(1 << 20), mc.time(1 << 20));
}


TEST(Vbl, GainDoesNotDistortBeamShape) {
  // The saturating amplifier multiplies intensity but (well below
  // saturation) leaves the normalized profile nearly unchanged.
  auto ctx = core::make_seq();
  beamline::VblConfig cfg;
  cfg.n = 64;
  cfg.gain0 = 0.2;
  cfg.i_sat = 1e6;  // far from saturation: uniform gain
  beamline::Beamline beam(ctx, cfg);
  beam.set_gaussian(0.002, 0.01);
  const double w0 = beam.beam_width();
  beam.step();
  EXPECT_NEAR(beam.beam_width(), w0, 0.02 * w0);
}

TEST(Fft2d, TransposeKindDoesNotChangeResult) {
  const std::size_t n = 32;
  auto a = random_signal(n * n, 77);
  auto b = a;
  auto ctx = core::make_seq();
  beamline::fft2d(ctx, a, n, false, beamline::TransposeKind::Naive);
  beamline::fft2d(ctx, b, n, false, beamline::TransposeKind::Tiled);
  for (std::size_t k = 0; k < n * n; ++k) {
    EXPECT_EQ(a[k], b[k]);
  }
}

}  // namespace
