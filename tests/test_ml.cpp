// Tests for the deep-learning module: NN gradient correctness and training,
// distributed algorithms (KAVG vs ASGD claims), stream-ensemble machinery,
// and the LBANN scaling model.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/ml.hpp"

namespace {

using namespace coe;

TEST(DenseNet, GradientMatchesFiniteDifference) {
  ml::DenseNet net({4, 6, 3}, 2);
  core::Rng rng(3);
  std::vector<double> x(4);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const std::size_t label = 1;
  std::vector<double> grad(net.num_params(), 0.0);
  net.loss_and_grad(x, label, grad);
  // Check a sampling of parameters.
  for (std::size_t k = 0; k < net.num_params(); k += 7) {
    const double h = 1e-6;
    std::vector<double> p(net.params().begin(), net.params().end());
    p[k] += h;
    net.set_params(p);
    std::vector<double> dummy(net.num_params(), 0.0);
    const double lp = net.loss_and_grad(x, label, dummy);
    p[k] -= 2.0 * h;
    net.set_params(p);
    std::fill(dummy.begin(), dummy.end(), 0.0);
    const double lm = net.loss_and_grad(x, label, dummy);
    p[k] += h;
    net.set_params(p);
    EXPECT_NEAR(grad[k], (lp - lm) / (2.0 * h), 1e-4)
        << "param " << k;
  }
}

TEST(DenseNet, PredictsProbabilities) {
  ml::DenseNet net({3, 5, 4}, 1);
  std::vector<double> x{0.1, -0.2, 0.5};
  auto p = net.predict(x);
  ASSERT_EQ(p.size(), 4u);
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(DenseNet, LearnsBlobs) {
  auto ds = ml::make_blobs(400, 6, 4, 2.0, 5);
  ml::DenseNet net({6, 16, 4}, 7);
  const double acc0 = net.accuracy(ds.x, ds.y, ds.nfeat);
  ml::TrainConfig cfg;
  cfg.epochs = 30;
  ml::train_sgd(net, ds.x, ds.y, ds.nfeat, cfg);
  const double acc1 = net.accuracy(ds.x, ds.y, ds.nfeat);
  EXPECT_GT(acc1, 0.9);
  EXPECT_GT(acc1, acc0);
}

TEST(Distributed, SyncSgdConverges) {
  auto ds = ml::make_blobs(300, 8, 3, 2.0, 9);
  ml::DenseNet net({8, 12, 3}, 11);
  ml::DistConfig cfg;
  cfg.gradient_budget = 1200;
  auto res = ml::train_distributed(net, ds, ml::DistAlgo::SyncSgd, cfg);
  EXPECT_FALSE(res.diverged);
  EXPECT_GT(res.final_accuracy, 0.85);
}

TEST(Distributed, KavgReducesCommRounds) {
  auto ds = ml::make_blobs(300, 8, 3, 2.0, 9);
  ml::DistConfig cfg;
  cfg.gradient_budget = 1200;
  cfg.k = 8;
  ml::DenseNet n1({8, 12, 3}, 11), n2({8, 12, 3}, 11);
  auto sync = ml::train_distributed(n1, ds, ml::DistAlgo::SyncSgd, cfg);
  auto kavg = ml::train_distributed(n2, ds, ml::DistAlgo::Kavg, cfg);
  EXPECT_FALSE(kavg.diverged);
  // One reduction per K local steps vs one per step.
  EXPECT_LT(kavg.comm_rounds * 4, sync.comm_rounds);
  // And still trains.
  EXPECT_GT(kavg.final_accuracy, 0.85);
}

TEST(Distributed, AsgdUnstableAtKavgLearningRate) {
  // The paper's core claim: "the learning rate assumed for ASGD
  // convergence is usually too small for practical purposes" -- at a rate
  // where KAVG is fine, stale gradients hurt ASGD badly.
  auto ds = ml::make_blobs(300, 8, 3, 2.0, 17);
  ml::DistConfig cfg;
  cfg.gradient_budget = 1800;
  cfg.learners = 16;
  cfg.lr = 0.9;
  cfg.k = 4;
  ml::DenseNet na({8, 12, 3}, 11), nk({8, 12, 3}, 11);
  auto asgd = ml::train_distributed(na, ds, ml::DistAlgo::Asgd, cfg);
  auto kavg = ml::train_distributed(nk, ds, ml::DistAlgo::Kavg, cfg);
  EXPECT_FALSE(kavg.diverged);
  EXPECT_GT(kavg.final_accuracy, 0.8);
  // ASGD either diverges or lands clearly behind.
  if (!asgd.diverged) {
    EXPECT_LT(asgd.final_accuracy, kavg.final_accuracy);
  }
}

TEST(Streams, CalibrationHitsTargets) {
  ml::StreamsConfig cfg;
  cfg.classes = 51;
  cfg.train_samples = 1500;
  cfg.test_samples = 2500;
  cfg.target_accuracy = {0.61, 0.56, 0.59};
  auto ds = ml::generate_streams(cfg);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(ml::stream_accuracy(ds.test, s), cfg.target_accuracy[s],
                0.04)
        << "stream " << s;
  }
}

TEST(Streams, EnsembleBeatsBestSingleStream) {
  ml::StreamsConfig cfg;
  cfg.classes = 51;
  cfg.train_samples = 1500;
  cfg.test_samples = 2500;
  cfg.target_accuracy = {0.61, 0.56, 0.59};
  auto ds = ml::generate_streams(cfg);
  double best_single = 0.0;
  for (std::size_t s = 0; s < 3; ++s) {
    best_single = std::max(best_single, ml::stream_accuracy(ds.test, s));
  }
  const double avg = ml::combine_simple_average(ds.test);
  EXPECT_GT(avg, best_single + 0.02);
}

TEST(Streams, LearnedCombinersAreCompetitive) {
  ml::StreamsConfig cfg;
  cfg.classes = 21;  // small for test speed
  cfg.train_samples = 1200;
  cfg.test_samples = 1200;
  cfg.target_accuracy = {0.70, 0.65, 0.68};
  auto ds = ml::generate_streams(cfg);
  const double avg = ml::combine_simple_average(ds.test);
  const double lr = ml::combine_logistic_regression(ds.train, ds.test);
  const double nn = ml::combine_shallow_nn(ds.train, ds.test);
  // Learned combiners must at least approach the averaging baseline.
  EXPECT_GT(lr, avg - 0.05);
  EXPECT_GT(nn, avg - 0.05);
  EXPECT_GT(lr, ml::stream_accuracy(ds.test, 1));
}

TEST(Lbann, Figure3SpeedupShape) {
  ml::LbannModel m;
  const auto v100 = hsim::machines::v100();
  // Near-perfect 2 -> 4 scaling; 2.8x at 8; 3.4x at 16.
  EXPECT_NEAR(ml::sample_speedup(m, v100, 4), 1.9, 0.25);
  EXPECT_NEAR(ml::sample_speedup(m, v100, 8), 2.8, 0.3);
  EXPECT_NEAR(ml::sample_speedup(m, v100, 16), 3.4, 0.4);
}

TEST(Lbann, WeakScalingIsFlat) {
  ml::LbannModel m;
  const auto v100 = hsim::machines::v100();
  // Same GPUs/sample, more replicas: step time grows only by the
  // allreduce log term.
  const auto t64 = ml::train_step_time(m, v100,
                                       hsim::clusters::sierra(16), 64, 4);
  const auto t2048 = ml::train_step_time(
      m, v100, hsim::clusters::sierra(512), 2048, 4);
  EXPECT_LT(t2048, 1.5 * t64);
}

TEST(Lbann, MemoryForcesAtLeastTwoGpus) {
  ml::LbannModel m;
  EXPECT_GE(m.min_gpus_per_sample, 2u);
  EXPECT_GT(m.weight_bytes + m.activation_bytes,
            hsim::machines::v100().mem_capacity);
}

}  // namespace
