// Tests for the minikin module: detailed balance, steady-state residuals,
// direct-vs-iterative agreement, and the memory-constrained threading
// model that drives the Cretin CPU/GPU comparison.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "kinetics/solver.hpp"

namespace {

using namespace coe;

TEST(Atomic, ModelStructure) {
  auto m = kinetics::make_model(20);
  EXPECT_EQ(m.num_levels(), 20u);
  // Ladder ascending, weights 2n^2.
  for (std::size_t i = 1; i < 20; ++i) EXPECT_GT(m.energy[i], m.energy[i - 1]);
  EXPECT_DOUBLE_EQ(m.weight[0], 2.0);
  EXPECT_DOUBLE_EQ(m.weight[3], 32.0);
  // Adjacent levels always coupled: at least 19 transitions.
  EXPECT_GE(m.transitions.size(), 19u);
  for (const auto& t : m.transitions) EXPECT_LT(t.lo, t.hi);
}

TEST(Atomic, DetailedBalanceIdentity) {
  auto m = kinetics::make_model(10);
  kinetics::Zone z{0.7, 2.0};
  for (const auto& t : m.transitions) {
    const double up = kinetics::collisional_up(m, t, z);
    const double down = kinetics::collisional_down(m, t, z);
    const double de = m.energy[t.hi] - m.energy[t.lo];
    // g_lo C_up = g_hi C_down exp(-dE/T)
    EXPECT_NEAR(m.weight[t.lo] * up,
                m.weight[t.hi] * down * std::exp(-de / z.te),
                1e-12 * m.weight[t.lo] * up);
  }
}

TEST(Kinetics, PureCollisionalGivesBoltzmann) {
  // Without radiative decay, steady state must be the Boltzmann
  // distribution at Te (LTE limit).
  auto m = kinetics::make_model(12, 0.6, 3);
  for (auto& t : m.transitions) t.radiative = false;
  kinetics::Zone z{0.5, 1.0};
  auto pops = kinetics::solve_zone(m, z, kinetics::SolveMethod::DenseDirect);
  double zsum = 0.0;
  for (std::size_t i = 0; i < m.num_levels(); ++i) {
    zsum += m.weight[i] * std::exp(-m.energy[i] / z.te);
  }
  for (std::size_t i = 0; i < m.num_levels(); ++i) {
    const double boltzmann = m.weight[i] * std::exp(-m.energy[i] / z.te) /
                             zsum;
    EXPECT_NEAR(pops[i], boltzmann, 1e-9) << "level " << i;
  }
}

TEST(Kinetics, RadiativeDecayDepopulatesExcitedStates) {
  auto m = kinetics::make_model(12, 0.6, 3);
  kinetics::Zone z{0.5, 1.0};
  auto with_rad =
      kinetics::solve_zone(m, z, kinetics::SolveMethod::DenseDirect);
  for (auto& t : m.transitions) t.radiative = false;
  auto without =
      kinetics::solve_zone(m, z, kinetics::SolveMethod::DenseDirect);
  // Radiative losses push population toward the ground state (non-LTE).
  EXPECT_GT(with_rad[0], without[0]);
}

TEST(Kinetics, SteadyStateResidualIsZero) {
  auto m = kinetics::make_model(25, 0.5, 9);
  kinetics::Zone z{0.8, 3.0};
  auto pops = kinetics::solve_zone(m, z, kinetics::SolveMethod::DenseDirect);
  const double sum = std::accumulate(pops.begin(), pops.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_LT(kinetics::kinetics_residual(m, z, pops), 1e-9);
  for (double p : pops) EXPECT_GT(p, -1e-12);  // populations nonnegative
}

class DirectVsIterative : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DirectVsIterative, Agree) {
  auto m = kinetics::make_model(GetParam(), 0.5, 13);
  kinetics::Zone z{0.6, 1.5};
  auto d = kinetics::solve_zone(m, z, kinetics::SolveMethod::DenseDirect);
  auto it = kinetics::solve_zone(m, z, kinetics::SolveMethod::SparseIterative);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(d[i], it[i], 1e-6 + 1e-4 * std::abs(d[i])) << "level " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ModelSizes, DirectVsIterative,
                         ::testing::Values(8, 16, 32));

TEST(Batch, ZoneParallelIdlesWorkersWhenMemoryBound) {
  auto m = kinetics::make_model(64);
  std::vector<kinetics::Zone> zones(16, kinetics::Zone{0.7, 1.0});
  auto cpu = core::make_cpu();
  // Memory for only ~4 workspaces.
  const double mem = 4.2 * m.workspace_bytes();
  auto rep = kinetics::process_zones(cpu, m, zones,
                                     kinetics::SolveMethod::DenseDirect,
                                     kinetics::ThreadMode::ZoneParallel, 40,
                                     mem);
  EXPECT_EQ(rep.active_workers, 4u);
  EXPECT_EQ(rep.total_workers, 40u);
}

TEST(Batch, TransitionParallelAlwaysFits) {
  auto m = kinetics::make_model(64);
  std::vector<kinetics::Zone> zones(16, kinetics::Zone{0.7, 1.0});
  auto gpu = core::make_device();
  const double tiny_mem = 1.5 * m.workspace_bytes();
  auto rep = kinetics::process_zones(gpu, m, zones,
                                     kinetics::SolveMethod::DenseDirect,
                                     kinetics::ThreadMode::TransitionParallel,
                                     5120, tiny_mem);
  EXPECT_GT(rep.active_workers, 64u);
  EXPECT_GT(rep.flops, 0.0);
}

TEST(Batch, GpuModeFasterOnLargeModels) {
  auto m = kinetics::make_model(96);
  std::vector<kinetics::Zone> zones(32, kinetics::Zone{0.7, 1.0});
  auto cpu = core::make_cpu();
  auto gpu = core::make_device();
  const double cpu_mem = 8.0 * m.workspace_bytes();  // memory-starved
  auto rep_cpu = kinetics::process_zones(
      cpu, m, zones, kinetics::SolveMethod::DenseDirect,
      kinetics::ThreadMode::ZoneParallel, 44, cpu_mem);
  auto rep_gpu = kinetics::process_zones(
      gpu, m, zones, kinetics::SolveMethod::DenseDirect,
      kinetics::ThreadMode::TransitionParallel, 5120,
      16.0 * double(1ull << 30));
  EXPECT_LT(rep_gpu.modeled_time, rep_cpu.modeled_time);
}

TEST(Batch, PopulationsReturnedPerZone) {
  auto m = kinetics::make_model(16);
  std::vector<kinetics::Zone> zones{{0.3, 1.0}, {1.5, 1.0}};
  auto ctx = core::make_seq();
  std::vector<std::vector<double>> pops;
  kinetics::process_zones(ctx, m, zones, kinetics::SolveMethod::DenseDirect,
                          kinetics::ThreadMode::ZoneParallel, 4, 1e12,
                          &pops);
  ASSERT_EQ(pops.size(), 2u);
  // Hotter zone has more excited-state population.
  const double excited_cold =
      1.0 - pops[0][0];
  const double excited_hot = 1.0 - pops[1][0];
  EXPECT_GT(excited_hot, excited_cold);
}


TEST(Batch, IterativeMethodCountsLessSolveWork) {
  // The sparse iterative path (the cuSPARSE-built solver) models far
  // fewer flops than the dense LU on a large sparse-ish model.
  auto m = kinetics::make_model(512, 0.2, 5);
  std::vector<kinetics::Zone> zones(4, kinetics::Zone{0.8, 1.0});
  auto c1 = core::make_device();
  auto c2 = core::make_device();
  auto direct = kinetics::process_zones(
      c1, m, zones, kinetics::SolveMethod::DenseDirect,
      kinetics::ThreadMode::TransitionParallel, 5120, 1e12);
  auto iter = kinetics::process_zones(
      c2, m, zones, kinetics::SolveMethod::SparseIterative,
      kinetics::ThreadMode::TransitionParallel, 5120, 1e12);
  EXPECT_LT(iter.flops, 0.2 * direct.flops);
}

}  // namespace
