// Stream-overlap ablation (DESIGN.md section 11): serialized vs streamed
// simulated time on a V100 for the SW4 forcing-offload scenario. The host
// computes the source terms each step and ships them to the device; with
// streams the upload rides stream 1 under the stencil and the shake-map
// kernel rides stream 2 under the next step's stencil, so the steady-state
// period collapses from (upload + stencil + forcing + shake) to
// max(upload, stencil + forcing). Near the balance point upload ~= kernels
// the speedup approaches 2x. The numerics are identical either way --
// streams reorder accounting, not arithmetic -- and the bench checks that.
//
// A second table sweeps the machine's concurrent_kernels knob with a
// synthetic many-stream kernel pipeline to show the kernel-kernel overlap
// bound the knob models.
#include <cstdio>
#include <vector>

#include "core/table.hpp"
#include "stencil/wave.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

struct OverlapResult {
  double sim_seconds = 0.0;
  std::vector<double> state;  ///< full leapfrog state, for bitwise checks
};

/// Runs `steps` of the host-forcing wave problem on a fresh V100 context
/// and returns the simulated time plus the final checkpointable state.
OverlapResult run_wave(bool use_streams, std::size_t n, int steps,
                       std::size_t num_sources,
                       core::ExecContext* keep = nullptr,
                       prof::Profiler* profiler = nullptr) {
  auto local = core::make_device(hsim::machines::v100());
  core::ExecContext& ctx = keep ? *keep : local;
  stencil::WaveOptions opts;
  opts.tiled = true;
  opts.fused = true;
  opts.forcing_on_device = false;  // the pre-offload SW4 configuration
  opts.use_streams = use_streams;
  opts.profiler = profiler;
  stencil::WaveSolver solver(ctx, n, n, n, 1.0, 1.0, opts);
  for (std::size_t s = 0; s < num_sources; ++s) {
    solver.add_source({s % n, (3 * s) % n, (7 * s) % n, 1.0, 2.0, 0.2});
  }
  const double dt = solver.stable_dt();
  const double t0 = ctx.simulated_time();
  for (int s = 0; s < steps; ++s) solver.step(dt);
  ctx.sync();  // join all streams so the makespan is final
  OverlapResult r;
  r.sim_seconds = ctx.simulated_time() - t0;
  solver.save_state(r.state);
  return r;
}

}  // namespace

COE_BENCH_MAIN(ablation_overlap) {
  std::printf("=== Stream overlap ablation: SW4 forcing offload on V100"
              " ===\n\n");
  const std::size_t n = 48;
  const int steps = 50;
  std::printf("grid %zu^3, %d steps, host-computed forcing uploaded every"
              " step\n\n",
              n, steps);

  // Sweep the upload-to-kernel ratio via the source count. The headline
  // row is the balance point where the upload takes about as long as the
  // step's kernels.
  const std::size_t sweep[] = {16384, 49152, 98304, 147456, 294912};
  const std::size_t headline = 147456;
  core::Table t({"sources", "serial ms", "streamed ms", "speedup",
                 "bitwise"});
  double headline_speedup = 0.0;
  for (const std::size_t src : sweep) {
    const bool is_headline = src == headline;
    auto serial_ctx = core::make_device(hsim::machines::v100());
    auto stream_ctx = core::make_device(hsim::machines::v100());
    if (is_headline) {
      // Trace + span the headline streamed run so the harness can extract
      // its critical path and write PROF/TRACE artifacts.
      stream_ctx.set_trace(&bench.trace());
    }
    const OverlapResult serial =
        run_wave(false, n, steps, src, &serial_ctx);
    const OverlapResult streamed =
        run_wave(true, n, steps, src, &stream_ctx,
                 is_headline ? &bench.profiler() : nullptr);
    const double speedup = serial.sim_seconds / streamed.sim_seconds;
    const bool identical = serial.state == streamed.state;
    t.row({std::to_string(src), core::Table::num(serial.sim_seconds * 1e3, 3),
           core::Table::num(streamed.sim_seconds * 1e3, 3),
           core::Table::num(speedup, 2) + "x",
           identical ? "yes" : "NO"});
    bench.metrics().set("overlap.sw4." + std::to_string(src) + ".speedup",
                        speedup);
    if (is_headline) {
      headline_speedup = speedup;
      bench.add_context("v100_serial", serial_ctx);
      bench.add_context("v100_streamed", stream_ctx);
    }
  }
  t.print();
  bench.metrics().set("overlap.sw4.headline_speedup", headline_speedup);
  std::printf("\nheadline (%zu sources): %.2fx -- upload hides under the"
              " stencil and the shake map hides under the next step's"
              " stencil, so the step collapses to max(upload, stencil +"
              " forcing); two hidden resources can push slightly past 2x"
              " near the balance point.\n",
              headline, headline_speedup);

  // Kernel-kernel overlap: a pipeline of equal kernels issued round-robin
  // onto 8 streams, swept over the concurrent_kernels knob. The makespan
  // contracts by min(streams, concurrent_kernels) (plus launch overhead,
  // which never overlaps itself).
  std::printf("\n=== concurrent_kernels knob: 64 kernels on 8 streams"
              " ===\n\n");
  core::Table t2({"concurrent_kernels", "sim ms", "vs serial"});
  const hsim::Workload w{2.0, 64.0};
  const std::size_t elems = 1 << 20;
  std::vector<double> buf(elems, 1.0);
  double serial_ms = 0.0;
  for (const int ck : {1, 2, 4, 8}) {
    auto mach = hsim::machines::v100();
    mach.concurrent_kernels = ck;
    auto ctx = core::make_device(mach);
    for (int k = 0; k < 64; ++k) {
      ctx.stream(static_cast<std::size_t>(k % 8));
      ctx.forall(elems, w, [&](std::size_t i) { buf[i] += 1.0; });
    }
    const double ms = ctx.sync() * 1e3;
    if (ck == 1) serial_ms = ms;
    t2.row({std::to_string(ck), core::Table::num(ms, 3),
            core::Table::num(serial_ms / ms, 2) + "x"});
    bench.metrics().set("overlap.ck" + std::to_string(ck) + ".sim_ms", ms);
  }
  t2.print();
  return 0;
}
