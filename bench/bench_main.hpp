#pragma once
// Shared harness every bench binary registers with (DESIGN.md section 10.3).
// A bench defines its body with COE_BENCH_MAIN(name) and keeps printing its
// human-readable tables to stdout exactly as before (the EXPERIMENTS.md
// oracle diffs that stream); the harness times the run, collects whatever
// the body publishes into its MetricsRegistry / TraceBuffer / machine list,
// and writes a standardized BENCH_<name>.json next to the binary (or under
// --bench-out=DIR / $COE_BENCH_DIR). Harness notices go to stderr so stdout
// stays byte-for-byte diffable.
//
// Flags consumed by the harness (anything else is left for the body via
// bench.argc()/bench.argv() — google-benchmark flags pass through):
//   --bench-out=DIR   directory for BENCH_*.json / TRACE_*.json
//   --bench-no-json   run the body, skip the JSON artifacts

#include <cstddef>
#include <string>
#include <vector>

#include "core/cost.hpp"
#include "core/exec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/span.hpp"

namespace coe::bench {

/// One simulated machine's headline result for the bench JSON: a name, the
/// simulated seconds it accumulated, and (when captured from an
/// ExecContext) the aggregate operation counters behind that time.
struct MachineResult {
  std::string name;
  double sim_seconds = 0.0;
  bool has_counters = false;
  hsim::Counters counters;
};

class Harness {
 public:
  /// Sinks the body publishes into; all of them end up in the JSON report.
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::TraceBuffer& trace() { return trace_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  const obs::TraceBuffer& trace() const { return trace_; }

  /// Span sink: drivers take a prof::Profiler* and bodies pass
  /// `&bench.profiler()`. After the body returns, the harness analyzes the
  /// trace (critical path + bottleneck classification) and writes
  /// PROF_<name>.json next to the BENCH_ JSON, folding this tree in.
  prof::Profiler& profiler() { return profiler_; }
  const prof::Profiler& profiler() const { return profiler_; }

  /// Records a machine's simulated time (e.g. a shadow machine or a
  /// repriced total) without counters.
  void add_machine(std::string name, double sim_seconds);

  /// Records an ExecContext's simulated time plus its aggregate counters.
  void add_context(std::string name, const core::ExecContext& ctx);

  const std::vector<MachineResult>& machines() const { return machines_; }

  /// Command-line arguments left after the harness consumed its own flags
  /// (argv()[0] is the program name; the vector is NULL-terminated so it
  /// can be handed to benchmark::Initialize).
  int argc() const { return static_cast<int>(args_.size()) - 1; }
  char** argv() { return args_.data(); }

  const std::string& name() const { return name_; }
  const std::string& out_dir() const { return out_dir_; }
  bool json_enabled() const { return json_enabled_; }

 private:
  friend int run_bench(int argc, char** argv, const char* name,
                       int (*body)(Harness&));
  obs::MetricsRegistry metrics_;
  obs::TraceBuffer trace_;
  prof::Profiler profiler_;
  std::vector<MachineResult> machines_;
  std::vector<char*> args_;  ///< leftover argv + trailing nullptr
  std::string name_;
  std::string out_dir_ = ".";
  bool json_enabled_ = true;
};

/// Parses harness flags, runs `body`, writes BENCH_<name>.json (plus
/// TRACE_<name>.json when the trace buffer is non-empty, with the critical
/// path marked as flow events, and PROF_<name>.json when there is a trace
/// or any spans); returns the body's exit code. Artifact-write failures
/// warn on stderr but do not fail the bench.
int run_bench(int argc, char** argv, const char* name, int (*body)(Harness&));

}  // namespace coe::bench

/// Defines the bench body (replacing `int main()`) and the real main()
/// that routes through the harness. The body receives `Harness& bench`.
#define COE_BENCH_MAIN(name)                                              \
  static int coe_bench_body_(::coe::bench::Harness& bench);               \
  int main(int argc, char** argv) {                                       \
    return ::coe::bench::run_bench(argc, argv, #name, &coe_bench_body_);  \
  }                                                                       \
  static int coe_bench_body_([[maybe_unused]] ::coe::bench::Harness& bench)
