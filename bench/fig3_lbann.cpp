// Figure 3 reproduction: "Performance of LBANN on up to 2048 GPUs" --
// strong scaling of the spatial-parallel (GPUs-per-sample) partitioning
// and weak scaling across replicas for the semantic-segmentation model
// that does not fit in one V100's memory.
#include <cstdio>

#include "core/table.hpp"
#include "ml/lbann.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

COE_BENCH_MAIN(fig3_lbann) {
  std::printf("=== Figure 3: LBANN strong/weak scaling to 2048 GPUs ===\n\n");
  ml::LbannModel m;
  const auto v100 = hsim::machines::v100();

  std::printf("Model: %.0f GFLOP/sample, %.1f GB weights + %.1f GB"
              " activations (> 16 GB V100 => at least %zu GPUs/sample).\n\n",
              m.flops_per_sample / 1e9, m.weight_bytes / 1e9,
              m.activation_bytes / 1e9, m.min_gpus_per_sample);

  // Strong scaling of one sample's step (the dotted lines of Fig. 3).
  core::Table strong({"GPUs/sample", "step time (s)", "speedup vs 2",
                      "paper"});
  const char* paper_notes[5] = {"1.0 (baseline)", "~2.0 (near-perfect)",
                                "2.8", "3.4", "-"};
  int pi = 0;
  for (std::size_t p : {2, 4, 8, 16, 32}) {
    strong.row({std::to_string(p),
                core::Table::sci(ml::sample_step_time(m, v100, p), 3),
                core::Table::num(ml::sample_speedup(m, v100, p), 2),
                paper_notes[pi++]});
  }
  strong.print();

  // Weak scaling: fixed GPUs/sample, replicas grow with the machine (the
  // solid lines of Fig. 3: "good weak scaling trends").
  std::printf("\nWeak scaling (samples/step = GPUs / GPUs-per-sample):\n");
  core::Table weak({"total GPUs", "gpus/sample=2", "gpus/sample=4",
                    "gpus/sample=8", "gpus/sample=16"});
  for (std::size_t g : {32, 64, 128, 256, 512, 1024, 2048}) {
    std::vector<std::string> row{std::to_string(g)};
    for (std::size_t p : {2, 4, 8, 16}) {
      const auto net = hsim::clusters::sierra(static_cast<int>(g / 4));
      row.push_back(core::Table::sci(
          ml::train_step_time(m, v100, net, g, p), 3));
    }
    weak.row(row);
  }
  weak.print();
  std::printf("\nShape checks: columns nearly flat as GPUs grow (weak"
              " scaling); moving right along a row shows the strong-scaling"
              " gain of deeper sample partitioning.\n");

  for (std::size_t p : {2, 4, 8, 16, 32}) {
    bench.add_machine("v100_x" + std::to_string(p),
                      ml::sample_step_time(m, v100, p));
  }
  bench.metrics().set("fig3.speedup_p16", ml::sample_speedup(m, v100, 16));
  return 0;
}
