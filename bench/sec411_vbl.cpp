// Section 4.11 reproduction (VBL): the RAJA-vs-native transpose inside the
// 2D FFT (real wall time + modeled traffic), the GPUDirect-vs-cudaMemcpy
// crossover scan, and the Figure 9 phase-defect propagation.
#include <chrono>
#include <cstdio>

#include "beamline/vbl.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

COE_BENCH_MAIN(sec411_vbl) {
  std::printf("=== Section 4.11: VBL transpose, transfers, defects ===\n\n");

  // Transpose comparison: real single-core wall time + modeled traffic.
  {
    const std::size_t n = 1024;
    std::vector<beamline::cplx> in(n * n), out;
    core::Rng rng(5);
    for (auto& v : in) v = beamline::cplx(rng.uniform(), rng.uniform());
    core::Table t({"Transpose", "host ms", "modeled GB moved",
                   "V100 modeled ms"});
    for (auto kind : {beamline::TransposeKind::Naive,
                      beamline::TransposeKind::Tiled}) {
      auto gpu = core::make_device(hsim::machines::v100());
      const auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < 10; ++rep) {
        beamline::transpose(gpu, in, out, n, n, kind);
      }
      const auto t1 = std::chrono::steady_clock::now();
      t.row({kind == beamline::TransposeKind::Naive
                 ? "strided ('RAJA forallN')"
                 : "tiled ('native CUDA')",
             core::Table::num(
                 std::chrono::duration<double>(t1 - t0).count() * 100.0, 2),
             core::Table::num(gpu.counters().bytes / 10.0 / 1e9, 3),
             core::Table::num(gpu.simulated_time() / 10.0 * 1e3, 3)});
    }
    t.print();
    std::printf("-> \"the native CUDA transpose significantly outperformed"
                " the RAJA one.\"\n\n");
  }

  // GPUDirect vs cudaMemcpy crossover.
  {
    const auto gd_h2d = beamline::gpudirect_h2d();
    const auto gd_d2h = beamline::gpudirect_d2h();
    const auto mc = beamline::cudamemcpy_path();
    std::printf("Transfer-path crossover (paper: memcpy overtakes GPUDirect"
                " at a few KB H2D, a few hundred bytes D2H):\n");
    std::printf("  H2D crossover: %.0f bytes; D2H crossover: %.0f bytes\n",
                beamline::crossover_bytes(gd_h2d, mc),
                beamline::crossover_bytes(gd_d2h, mc));
    core::Table t({"bytes", "GPUDirect H2D (us)", "memcpy (us)", "winner"});
    for (double b : {64.0, 512.0, 4096.0, 65536.0, 1048576.0}) {
      const double g = gd_h2d.time(b) * 1e6;
      const double m = mc.time(b) * 1e6;
      t.row({core::Table::num(b, 0), core::Table::num(g, 2),
             core::Table::num(m, 2), g < m ? "GPUDirect" : "cudaMemcpy"});
    }
    t.print();
    std::printf("  VBL uses Unified Memory = 64 KiB blocks -> firmly in"
                " cudaMemcpy territory.\n\n");
  }

  // Figure 9: phase defects grow fluence ripples after 10 m.
  {
    auto run = [&](bool defects) {
      auto ctx = core::make_seq();
      beamline::VblConfig cfg;
      cfg.n = 128;
      cfg.physical_size = 0.01;
      cfg.dz = 1.0;
      cfg.gain0 = 0.4;
      beamline::Beamline beam(ctx, cfg);
      beam.set_gaussian(0.003);
      if (defects) {
        beam.add_phase_defect(0.004, 0.004, 150e-6, M_PI / 2);
        beam.add_phase_defect(0.0055, 0.0045, 150e-6, M_PI / 2);
      }
      beam.propagate(10.0);
      return beam.fluence_contrast();
    };
    const double clean = run(false);
    const double rippled = run(true);
    std::printf("Figure 9 analog: peak/mean fluence contrast after 10 m of"
                " amplified propagation:\n  clean beam %.3f, with two 150"
                " micron phase defects %.3f (%.0f%% more ripple).\n",
                clean, rippled, 100.0 * (rippled / clean - 1.0));
  }
  return 0;
}
