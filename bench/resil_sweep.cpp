// coe::resil study: checkpoint-interval sweep under fault injection.
// Claim (Young/Daly): for an exponential fault process with mean MTBF and
// checkpoint cost C, the interval sqrt(2*C*MTBF) minimizes total time; both
// much shorter (checkpoint-dominated) and much longer (replay-dominated)
// intervals lose. Also sweeps GPU MTBF through the scheduler simulator to
// show the cluster-level price of failures.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "ode/integrator.hpp"
#include "resil/resil.hpp"
#include "sched/scheduler.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

struct Decay : ode::OdeRhs {
  void eval(double, const ode::NVector& y, ode::NVector& ydot) override {
    const auto ys = y.data();
    auto ds = ydot.data();
    for (std::size_t i = 0; i < ys.size(); ++i) ds[i] = -0.3 * ys[i];
  }
};

struct SweepPoint {
  double total = 0.0;
  double overhead = 0.0;
  double faults = 0.0;
  double checkpoints = 0.0;
};

SweepPoint run_point(double mtbf, double interval, std::size_t steps,
                     std::size_t n, int seeds,
                     obs::MetricsRegistry* metrics = nullptr) {
  SweepPoint acc;
  for (int seed = 1; seed <= seeds; ++seed) {
    auto ctx = core::make_device();
    Decay f;
    ode::NVector y(ctx, n, 1.0);
    ode::Rk4Stepper stepper(f, y, 0.0, 1e-4);
    resil::ResilienceConfig cfg;
    cfg.mtbf = mtbf;
    cfg.checkpoint_interval = interval;
    cfg.seed = static_cast<std::uint64_t>(seed);
    cfg.metrics = metrics;
    auto rep = resil::run_resilient(
        stepper, ctx, steps, [&](std::size_t) { stepper.step(); }, cfg);
    if (!rep.completed) std::printf("  !! run did not complete\n");
    acc.total += rep.total_time;
    acc.overhead += rep.overhead();
    acc.faults += static_cast<double>(rep.faults);
    acc.checkpoints += static_cast<double>(rep.checkpoints);
  }
  const double inv = 1.0 / seeds;
  return {acc.total * inv, acc.overhead * inv, acc.faults * inv,
          acc.checkpoints * inv};
}

}  // namespace

COE_BENCH_MAIN(resil_sweep) {
  std::printf("=== coe::resil: MTBF x checkpoint-interval sweep ===\n\n");

  const std::size_t n = 512, steps = 4000;
  const int seeds = 5;

  // Modeled checkpoint cost for this app on the v100 model.
  auto probe_ctx = core::make_device();
  Decay f;
  ode::NVector y(probe_ctx, n, 1.0);
  ode::Rk4Stepper probe(f, y, 0.0, 1e-4);
  const double c = resil::modeled_checkpoint_cost(probe, probe_ctx);
  std::printf("app: RK4 stepper, n=%zu, %zu steps; checkpoint cost C ="
              " %.3g s (modeled)\n\n",
              n, steps, c);

  for (double mtbf : {0.005, 0.02, 0.1}) {
    const double yd = resil::young_daly_interval(mtbf, c);
    std::printf("MTBF = %g s  (Young/Daly interval = %.3g s), %d-seed"
                " averages:\n",
                mtbf, yd, seeds);
    core::Table t({"interval", "total time (s)", "overhead", "faults",
                   "checkpoints"});
    struct Cand {
      const char* label;
      double interval;
    };
    const Cand cands[] = {{"YD/10", yd / 10.0}, {"YD/3", yd / 3.0},
                          {"YD (optimal)", yd}, {"3 YD", yd * 3.0},
                          {"10 YD", yd * 10.0}};
    double best = 1e300;
    for (const auto& cand : cands) {
      best = std::min(best,
                      run_point(mtbf, cand.interval, steps, n, seeds).total);
    }
    for (const auto& cand : cands) {
      const auto p =
          run_point(mtbf, cand.interval, steps, n, seeds, &bench.metrics());
      std::string label = cand.label;
      if (p.total == best) label += " <-- min";
      t.row({label, core::Table::num(p.total, 6),
             core::Table::num(100.0 * p.overhead, 1) + "%",
             core::Table::num(p.faults, 1),
             core::Table::num(p.checkpoints, 1)});
    }
    t.print();
    std::printf("\n");
  }
  std::printf("-> total time is U-shaped in the interval; the Young/Daly"
              " point sits at (or next to) the bottom, and beats both"
              " 10x-shorter and 10x-longer checkpointing.\n\n");

  std::printf("=== scheduler under GPU failures (16 GPUs, SJF+quota) ===\n");
  core::Table s({"GPU MTBF (s)", "makespan", "utilization", "failures",
                 "requeues", "lost GPU-time"});
  auto jobs = sched::make_workload({1000, 60.0, 1.5, 0.0, 0.0, 21});
  for (double mtbf : {0.0, 20000.0, 5000.0, 1000.0}) {
    sched::SchedulerConfig cfg{16, sched::Policy::SjfQuota, 0.0, 0};
    cfg.gpu_mtbf = mtbf;
    cfg.gpu_repair_time = 120.0;
    cfg.fault_seed = 5;
    cfg.metrics = &bench.metrics();
    auto m = sched::Simulator(cfg).run(jobs);
    s.row({mtbf > 0.0 ? core::Table::num(mtbf, 0) : "reliable",
           core::Table::num(m.makespan, 0),
           core::Table::num(100.0 * m.utilization, 1) + "%",
           core::Table::num(double(m.gpu_failures), 0),
           core::Table::num(double(m.requeues), 0),
           core::Table::num(m.lost_gpu_time, 0)});
  }
  s.print();
  std::printf("-> shrinking MTBF converts useful GPU-time into lost work"
              " and repair downtime; all jobs still complete via requeue.\n");
  return 0;
}
