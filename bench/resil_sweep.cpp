// coe::resil study: checkpoint-interval sweep under fault injection.
// Claim (Young/Daly): for an exponential fault process with mean MTBF and
// checkpoint cost C, the interval sqrt(2*C*MTBF) minimizes total time; both
// much shorter (checkpoint-dominated) and much longer (replay-dominated)
// intervals lose. Also sweeps GPU MTBF through the scheduler simulator to
// show the cluster-level price of failures.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "guard/guard.hpp"
#include "la/la.hpp"
#include "ode/integrator.hpp"
#include "resil/resil.hpp"
#include "sched/scheduler.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

struct Decay : ode::OdeRhs {
  void eval(double, const ode::NVector& y, ode::NVector& ydot) override {
    const auto ys = y.data();
    auto ds = ydot.data();
    for (std::size_t i = 0; i < ys.size(); ++i) ds[i] = -0.3 * ys[i];
  }
};

struct SweepPoint {
  double total = 0.0;
  double overhead = 0.0;
  double faults = 0.0;
  double checkpoints = 0.0;
};

SweepPoint run_point(double mtbf, double interval, std::size_t steps,
                     std::size_t n, int seeds,
                     obs::MetricsRegistry* metrics = nullptr) {
  SweepPoint acc;
  for (int seed = 1; seed <= seeds; ++seed) {
    auto ctx = core::make_device();
    Decay f;
    ode::NVector y(ctx, n, 1.0);
    ode::Rk4Stepper stepper(f, y, 0.0, 1e-4);
    resil::ResilienceConfig cfg;
    cfg.mtbf = mtbf;
    cfg.checkpoint_interval = interval;
    cfg.seed = static_cast<std::uint64_t>(seed);
    cfg.metrics = metrics;
    auto rep = resil::run_resilient(
        stepper, ctx, steps, [&](std::size_t) { stepper.step(); }, cfg);
    if (!rep.completed) std::printf("  !! run did not complete\n");
    acc.total += rep.total_time;
    acc.overhead += rep.overhead();
    acc.faults += static_cast<double>(rep.faults);
    acc.checkpoints += static_cast<double>(rep.checkpoints);
  }
  const double inv = 1.0 / seeds;
  return {acc.total * inv, acc.overhead * inv, acc.faults * inv,
          acc.checkpoints * inv};
}

}  // namespace

COE_BENCH_MAIN(resil_sweep) {
  std::printf("=== coe::resil: MTBF x checkpoint-interval sweep ===\n\n");

  const std::size_t n = 512, steps = 4000;
  const int seeds = 5;

  // Modeled checkpoint cost for this app on the v100 model.
  auto probe_ctx = core::make_device();
  Decay f;
  ode::NVector y(probe_ctx, n, 1.0);
  ode::Rk4Stepper probe(f, y, 0.0, 1e-4);
  const double c = resil::modeled_checkpoint_cost(probe, probe_ctx);
  std::printf("app: RK4 stepper, n=%zu, %zu steps; checkpoint cost C ="
              " %.3g s (modeled)\n\n",
              n, steps, c);

  for (double mtbf : {0.005, 0.02, 0.1}) {
    const double yd = resil::young_daly_interval(mtbf, c);
    std::printf("MTBF = %g s  (Young/Daly interval = %.3g s), %d-seed"
                " averages:\n",
                mtbf, yd, seeds);
    core::Table t({"interval", "total time (s)", "overhead", "faults",
                   "checkpoints"});
    struct Cand {
      const char* label;
      double interval;
    };
    const Cand cands[] = {{"YD/10", yd / 10.0}, {"YD/3", yd / 3.0},
                          {"YD (optimal)", yd}, {"3 YD", yd * 3.0},
                          {"10 YD", yd * 10.0}};
    double best = 1e300;
    for (const auto& cand : cands) {
      best = std::min(best,
                      run_point(mtbf, cand.interval, steps, n, seeds).total);
    }
    for (const auto& cand : cands) {
      const auto p =
          run_point(mtbf, cand.interval, steps, n, seeds, &bench.metrics());
      std::string label = cand.label;
      if (p.total == best) label += " <-- min";
      t.row({label, core::Table::num(p.total, 6),
             core::Table::num(100.0 * p.overhead, 1) + "%",
             core::Table::num(p.faults, 1),
             core::Table::num(p.checkpoints, 1)});
    }
    t.print();
    std::printf("\n");
  }
  std::printf("-> total time is U-shaped in the interval; the Young/Daly"
              " point sits at (or next to) the bottom, and beats both"
              " 10x-shorter and 10x-longer checkpointing.\n\n");

  std::printf("=== scheduler under GPU failures (16 GPUs, SJF+quota) ===\n");
  core::Table s({"GPU MTBF (s)", "makespan", "utilization", "failures",
                 "requeues", "lost GPU-time"});
  auto jobs = sched::make_workload({1000, 60.0, 1.5, 0.0, 0.0, 21});
  for (double mtbf : {0.0, 20000.0, 5000.0, 1000.0}) {
    sched::SchedulerConfig cfg{16, sched::Policy::SjfQuota, 0.0, 0};
    cfg.gpu_mtbf = mtbf;
    cfg.gpu_repair_time = 120.0;
    cfg.fault_seed = 5;
    cfg.metrics = &bench.metrics();
    auto m = sched::Simulator(cfg).run(jobs);
    s.row({mtbf > 0.0 ? core::Table::num(mtbf, 0) : "reliable",
           core::Table::num(m.makespan, 0),
           core::Table::num(100.0 * m.utilization, 1) + "%",
           core::Table::num(double(m.gpu_failures), 0),
           core::Table::num(double(m.requeues), 0),
           core::Table::num(m.lost_gpu_time, 0)});
  }
  s.print();
  std::printf("-> shrinking MTBF converts useful GPU-time into lost work"
              " and repair downtime; all jobs still complete via requeue.\n\n");

  // ------------------------------------------------------------------
  // SDC ablation (DESIGN.md section 13): the same guarded CG solve under
  // seeded bit flips with the detection/containment stack peeled back in
  // layers. Flips land in the Krylov vectors AND the matrix values. "off"
  // lets every flip through. "abft" runs the Huang-Abraham check: the
  // identity e^T y = (A^T e)^T x holds for ANY x, so it catches corrupted
  // matrix values (stale checksum) but is structurally blind to operand
  // flips; on a trip the matrix is re-staged from its pristine source, but
  // the poisoned products already in the recursion are not recovered.
  // "guard" adds the checksum scrub + rollback-and-recompute and must
  // reproduce the clean answer bitwise.
  std::printf("=== SDC ablation: guarded CG, seeded bit flips ===\n");
  {
    auto a = la::poisson2d(24, 24);
    const std::size_t cgn = a.rows();
    const std::size_t cg_steps = 80;
    const int sdc_seeds = 3;
    core::Rng rng(7);
    std::vector<double> x_true(cgn), b(cgn);
    for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
    la::JacobiPreconditioner prec(a);

    // Clean reference: iterate sequence and simulated time with no
    // injection and no detection machinery.
    auto ctx_ref = core::make_device();
    la::CsrOperator plain_ref(a);
    std::vector<double> x_ref(cgn, 0.0);
    a.spmv(ctx_ref, x_true, b);
    la::CgStepper cg_ref(ctx_ref, plain_ref, prec, b, x_ref);
    for (std::size_t st = 0; st < cg_steps; ++st) cg_ref.step();
    const double t_clean = ctx_ref.simulated_time();
    const double ref_norm = la::norm2(ctx_ref, x_ref);

    auto rel_err = [&](core::ExecContext& ctx, std::span<const double> x) {
      std::vector<double> d(cgn);
      la::axpby(ctx, 1.0, x, -1.0, x_ref, d);
      const double e = la::norm2(ctx, d);
      return ref_norm > 0.0 ? e / ref_norm : e;
    };

    struct Abl {
      double injected = 0.0, detected = 0.0, escape = 0.0;
      double err = 0.0, overhead = 0.0;
    };
    auto publish = [&](const char* mode, const Abl& p) {
      const std::string pre = std::string("sdc.") + mode + ".";
      bench.metrics().add(pre + "injected", p.injected);
      bench.metrics().add(pre + "detected", p.detected);
      bench.metrics().set(pre + "escape_rate", p.escape);
      bench.metrics().set(pre + "final_rel_err", p.err);
      bench.metrics().set(pre + "detect_overhead", p.overhead);
    };

    guard::SdcConfig sdc;
    sdc.every_polls = 2;  // one flip every second poll

    Abl off, abft, grd;
    for (int seed = 1; seed <= sdc_seeds; ++seed) {
      const std::uint64_t sdc_seed =
          static_cast<std::uint64_t>(seed) * 1000003 + 77;

      {  // detection off: flips land and stay.
        auto ctx = core::make_device();
        auto am = a;  // private matrix copy: flips target it too
        la::CsrOperator op(am);
        std::vector<double> x(cgn, 0.0);
        la::CgStepper cg(ctx, op, prec, b, x);
        guard::SdcConfig c = sdc;
        c.seed = sdc_seed;
        guard::SdcInjector inj(c);
        for (auto& [name, span] : cg.sdc_targets()) inj.add_target(name, span);
        inj.add_target("la.values", am.values());
        for (std::size_t st = 0; st < cg_steps; ++st) {
          inj.poll(ctx.simulated_time());
          cg.step();
        }
        off.injected += static_cast<double>(inj.injected());
        off.escape += inj.injected() > 0 ? 1.0 : 0.0;
        off.err += rel_err(ctx, x);
        off.overhead += (ctx.simulated_time() - t_clean) / t_clean;
      }

      {  // ABFT on, no rollback: matrix flips trip the stale checksum and
         // the matrix is re-staged, but operand flips and the already
         // propagated bad products escape.
        auto ctx = core::make_device();
        auto am = a;
        la::AbftCsrOperator op(am);
        std::vector<double> x(cgn, 0.0);
        la::CgStepper cg(ctx, op, prec, b, x);
        guard::SdcConfig c = sdc;
        c.seed = sdc_seed;
        guard::SdcInjector inj(c);
        for (auto& [name, span] : cg.sdc_targets()) inj.add_target(name, span);
        inj.add_target("la.values", am.values());
        double detected = 0.0;
        for (std::size_t st = 0; st < cg_steps; ++st) {
          inj.poll(ctx.simulated_time());
          cg.step();
          if (op.trips() > 0) {
            ++detected;
            std::copy(a.values().begin(), a.values().end(),
                      am.values().begin());
            op.clear_trips();
          }
        }
        abft.injected += static_cast<double>(inj.injected());
        abft.detected += detected;
        abft.escape += inj.injected() > 0
                           ? (static_cast<double>(inj.injected()) - detected) /
                                 static_cast<double>(inj.injected())
                           : 0.0;
        abft.err += rel_err(ctx, x);
        abft.overhead += (ctx.simulated_time() - t_clean) / t_clean;
      }

      {  // full guard: scrub + ABFT + rollback-and-recompute.
        auto ctx = core::make_device();
        auto am = a;
        la::AbftCsrOperator op(am);
        std::vector<double> x(cgn, 0.0);
        la::CgStepper cg(ctx, op, prec, b, x);
        guard::SdcConfig c = sdc;
        c.seed = sdc_seed;
        guard::SdcInjector inj(c);
        guard::DetectorSet det;
        auto& scrub = det.emplace<guard::ChecksumDetector>("scrub");
        for (auto& [name, span] : cg.sdc_targets()) {
          inj.add_target(name, span);
          scrub.add_target(name, span);
        }
        inj.add_target("la.values", am.values());
        scrub.add_target("la.values", am.values());
        resil::ResilienceConfig rc;
        rc.checkpoint_interval = 1e-300;
        rc.verify_hook = [&](std::size_t) {
          inj.poll(ctx.simulated_time());
          return det.check_all(ctx) && op.trips() == 0;
        };
        rc.on_rollback = [&](std::size_t) {
          // The matrix is static configuration, not checkpointed state:
          // recovery re-stages it from its pristine source.
          std::copy(a.values().begin(), a.values().end(),
                    am.values().begin());
          op.clear_trips();
          det.arm_all(ctx);
        };
        rc.corruption_count = [&] { return inj.injected(); };
        auto rep = resil::run_resilient(
            cg, ctx, cg_steps,
            [&](std::size_t) {
              cg.step();
              det.arm_all(ctx);
            },
            rc);
        if (!rep.completed) std::printf("  !! guarded run did not complete\n");
        grd.injected += static_cast<double>(rep.corruptions_seen);
        grd.detected += static_cast<double>(rep.detections);
        grd.escape += rep.escape_rate();
        grd.err += rel_err(ctx, x);
        grd.overhead += (ctx.simulated_time() - t_clean) / t_clean;
      }
    }
    const double inv = 1.0 / sdc_seeds;
    for (Abl* p : {&off, &abft, &grd}) {
      p->injected *= inv;
      p->detected *= inv;
      p->escape *= inv;
      p->err *= inv;
      p->overhead *= inv;
    }
    publish("off", off);
    publish("abft", abft);
    publish("guard", grd);

    core::Table t({"mode", "injected", "detected", "escape rate",
                   "final rel err", "overhead"});
    auto row = [&](const char* label, const Abl& p) {
      t.row({label, core::Table::num(p.injected, 1),
             core::Table::num(p.detected, 1),
             core::Table::num(100.0 * p.escape, 1) + "%",
             core::Table::num(p.err, 3),
             core::Table::num(100.0 * p.overhead, 1) + "%"});
    };
    row("detection off", off);
    row("ABFT only", abft);
    row("ABFT + scrub + rollback", grd);
    t.print();
    std::printf("-> the checksum identity holds for any operand, so ABFT"
                " alone catches matrix corruption but is blind to flips in"
                " the Krylov vectors; the full guard contains every flip and"
                " lands on the clean iterate sequence (rel err 0), paying"
                " for it in verify + replay time.\n");
  }
  return 0;
}
