#include "bench/bench_main.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>

#include "obs/json.hpp"
#include "prof/prof.hpp"

namespace coe::bench {

void Harness::add_machine(std::string name, double sim_seconds) {
  MachineResult r;
  r.name = std::move(name);
  r.sim_seconds = sim_seconds;
  machines_.push_back(std::move(r));
}

void Harness::add_context(std::string name, const core::ExecContext& ctx) {
  MachineResult r;
  r.name = std::move(name);
  r.sim_seconds = ctx.simulated_time();
  r.has_counters = true;
  r.counters = ctx.counters();
  machines_.push_back(std::move(r));
}

namespace {

obs::Json counters_json(const hsim::Counters& c) {
  auto o = obs::Json::object();
  o.set("flops", obs::Json::number(c.flops));
  o.set("bytes", obs::Json::number(c.bytes));
  o.set("launches", obs::Json::number(static_cast<double>(c.launches)));
  o.set("transfers", obs::Json::number(static_cast<double>(c.transfers)));
  o.set("h2d_bytes", obs::Json::number(c.h2d_bytes));
  o.set("d2h_bytes", obs::Json::number(c.d2h_bytes));
  return o;
}

/// Writes the report; returns false (after a stderr warning) on IO errors.
bool write_json_report(const Harness& h, double wall_seconds) {
  const std::string base = h.out_dir() + "/";

  // Critical-path attribution over whatever the body traced; written as
  // PROF_<name>.json whenever there is a trace or at least one span, and
  // used to decorate the TRACE file with flow events along the chain.
  prof::DagProfile dag;
  std::vector<std::string> flow;
  const bool have_prof = !h.trace().empty() || !h.profiler().empty();
  if (!h.trace().empty()) {
    dag = prof::analyze(h.trace());
    flow = prof::critical_path_flow_events(dag);
  }

  std::string trace_path;
  if (!h.trace().empty()) {
    trace_path = base + "TRACE_" + h.name() + ".json";
    std::ofstream tf(trace_path);
    if (tf) {
      obs::write_chrome_trace(tf, h.trace(), flow.empty() ? nullptr : &flow);
    }
    if (!tf) {
      std::fprintf(stderr, "[bench] warning: could not write %s\n",
                   trace_path.c_str());
      trace_path.clear();
    }
  }

  std::string prof_path;
  if (have_prof) {
    prof_path = base + "PROF_" + h.name() + ".json";
    std::ofstream pf(prof_path);
    if (pf) {
      pf << prof::profile_json(dag, &h.profiler(), h.name()).dump() << "\n";
    }
    if (!pf) {
      std::fprintf(stderr, "[bench] warning: could not write %s\n",
                   prof_path.c_str());
      prof_path.clear();
    } else {
      std::fprintf(stderr, "[bench] wrote %s\n", prof_path.c_str());
    }
  }

  auto root = obs::Json::object();
  root.set("schema", obs::Json::string("coe-bench-v1"));
  root.set("name", obs::Json::string(h.name()));
  root.set("wall_seconds", obs::Json::number(wall_seconds));

  auto machines = obs::Json::array();
  for (const auto& m : h.machines()) {
    auto mo = obs::Json::object();
    mo.set("name", obs::Json::string(m.name));
    mo.set("sim_seconds", obs::Json::number(m.sim_seconds));
    mo.set("counters",
           m.has_counters ? counters_json(m.counters) : obs::Json());
    machines.push(std::move(mo));
  }
  root.set("machines", std::move(machines));
  root.set("metrics", obs::Json::parse(h.metrics().to_json()));

  if (!h.trace().empty() && !trace_path.empty()) {
    auto to = obs::Json::object();
    to.set("path", obs::Json::string(trace_path));
    to.set("events",
           obs::Json::number(static_cast<double>(h.trace().size())));
    to.set("dropped",
           obs::Json::number(static_cast<double>(h.trace().dropped())));
    root.set("trace", std::move(to));
  } else {
    root.set("trace", obs::Json());
  }

  if (!prof_path.empty()) {
    auto po = obs::Json::object();
    po.set("path", obs::Json::string(prof_path));
    po.set("critical_s", obs::Json::number(dag.critical_s));
    po.set("coverage", obs::Json::number(dag.coverage));
    root.set("profile", std::move(po));
  } else {
    root.set("profile", obs::Json());
  }

  const std::string path = base + "BENCH_" + h.name() + ".json";
  std::ofstream f(path);
  if (f) f << root.dump() << "\n";
  if (!f) {
    std::fprintf(stderr, "[bench] warning: could not write %s\n",
                 path.c_str());
    return false;
  }
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int run_bench(int argc, char** argv, const char* name, int (*body)(Harness&)) {
  Harness h;
  h.name_ = name;
  if (const char* dir = std::getenv("COE_BENCH_DIR")) {
    if (*dir != '\0') h.out_dir_ = dir;
  }
  h.args_.push_back(argc > 0 ? argv[0] : const_cast<char*>("bench"));
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--bench-out=", 12) == 0) {
      h.out_dir_ = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--bench-no-json") == 0) {
      h.json_enabled_ = false;
    } else {
      h.args_.push_back(argv[i]);
    }
  }
  h.args_.push_back(nullptr);

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  int rc = 0;
  try {
    rc = body(h);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", name, e.what());
    return 1;
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (h.json_enabled_) write_json_report(h, wall);
  return rc;
}

}  // namespace coe::bench
