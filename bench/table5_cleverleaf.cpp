// Table 5 reproduction: "CleverLeaf mini-app performance using SAMRAI".
// The real patch-based Euler solver runs on the mini-SAMRAI substrate;
// its kernel stream is priced on the paper's two configurations:
//   Full node:  2x POWER9 sockets (22 ranks/socket)  vs  4x V100
//   Device:     1x POWER9 socket                     vs  1x V100
#include <cstdio>

#include "amr/euler.hpp"
#include "core/table.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

/// Runs the CleverLeaf-style problem and returns the kernel counters.
hsim::Counters run_problem(std::int64_t n, int steps) {
  core::MemoryPool pool;
  amr::PatchLevel level(pool, amr::Box{0, 0, n - 1, n - 1}, 2,
                        amr::BoundaryKind::Outflow);
  // Four patches, as a node-level SAMRAI decomposition would produce.
  const std::int64_t h = n / 2;
  level.add_patch(amr::Box{0, 0, h - 1, h - 1});
  level.add_patch(amr::Box{h, 0, n - 1, h - 1});
  level.add_patch(amr::Box{0, h, h - 1, n - 1});
  level.add_patch(amr::Box{h, h, n - 1, n - 1});
  auto ctx = core::make_device();
  amr::EulerConfig cfg;
  cfg.dx = cfg.dy = 1.0 / double(n);
  amr::EulerSolver solver(ctx, level, cfg);
  solver.init([n](std::int64_t i, std::int64_t) {
    return amr::sod_state(i, n / 2);
  });
  for (int s = 0; s < steps; ++s) solver.step(solver.compute_dt());
  return ctx.counters();
}

}  // namespace

COE_BENCH_MAIN(table5_cleverleaf) {
  std::printf("=== Table 5: CleverLeaf mini-app using SAMRAI ===\n");
  std::printf("Real 2D Euler solve on the patch hierarchy; kernel stream"
              " priced per configuration.\n\n");

  // CPU efficiency calibration: CleverLeaf's patch kernels measured well
  // below STREAM on POWER9 (short inner loops, coarse MPI-rank
  // parallelism); the paper itself reports the CPU side as slow.
  auto p9_socket = hsim::machines::power9_socket();
  p9_socket.bw_efficiency = 0.30;
  p9_socket.flop_efficiency = 0.25;
  // The full-node CPU run (11 MPI ranks/socket) saturates the node far
  // better than the single-socket binding does.
  auto p9_node = hsim::machines::power9();
  p9_node.bw_efficiency = 0.55;
  p9_node.flop_efficiency = 0.50;
  // 4-GPU node: aggregate bandwidth derated by inter-GPU halo exchange.
  auto v100 = hsim::machines::v100();
  auto v100x4 = v100;
  v100x4.name = "4x V100";
  v100x4.peak_flops *= 4.0;
  v100x4.mem_bw *= 4.0;
  v100x4.bw_efficiency *= 0.55;
  v100x4.flop_efficiency *= 0.55;

  // Full-node problem is larger than the single-device one (matching the
  // paper, where the full-node row takes longer on 4 GPUs than the device
  // row on one).
  const auto full = run_problem(1024, 60);
  const auto device = run_problem(512, 60);

  const double cpu_full = hsim::CostModel(p9_node).predict(full);
  const double gpu_full = hsim::CostModel(v100x4).predict(full);
  const double cpu_dev = hsim::CostModel(p9_socket).predict(device);
  const double gpu_dev = hsim::CostModel(v100).predict(device);

  core::Table t({"", "Full Node (paper)", "Full Node (model)",
                 "P9 vs V100 (paper)", "P9 vs V100 (model)"});
  t.row({"CPU time (s)", "127.5", core::Table::num(cpu_full, 2), "74.0",
         core::Table::num(cpu_dev, 2)});
  t.row({"GPU time (s)", "17.86", core::Table::num(gpu_full, 2), "5.0",
         core::Table::num(gpu_dev, 2)});
  t.row({"Speedup", "7X", core::Table::num(cpu_full / gpu_full, 1) + "X",
         "15X", core::Table::num(cpu_dev / gpu_dev, 1) + "X"});
  t.print();
  std::printf("\n(Absolute seconds differ -- the bench grid is far smaller"
              " than the paper's -- the speedup columns are the result.)\n");

  bench.add_machine("p9_node_full", cpu_full);
  bench.add_machine("v100x4_full", gpu_full);
  bench.metrics().set("table5.fullnode_speedup", cpu_full / gpu_full);
  bench.metrics().set("table5.device_speedup", cpu_dev / gpu_dev);
  return 0;
}
