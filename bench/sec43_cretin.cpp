// Section 4.3 reproduction (Cretin/minikin): GPU vs CPU processing rates
// for atomic-kinetics zone batches. The paper's numbers: 5.75X per node
// for the second-largest atomic model; "much higher" for the largest
// because memory limits idle 60% of the CPU cores; and a projected 2.5X+
// CPU gain from porting the fine-grained threading back to the CPU.
#include <cstdio>

#include "core/table.hpp"
#include "kinetics/solver.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

COE_BENCH_MAIN(sec43_cretin) {
  std::printf("=== Section 4.3 (Cretin): minikin GPU vs CPU rates ===\n\n");

  const std::size_t cpu_cores = 44;   // 2x P9
  const std::size_t gpu_lanes = 5120; // V100 FP64 lanes
  // Per-node memory available for kinetics workspaces. Production atomic
  // models are huge: the dense rate matrix of an N-level model costs
  // ~2 N^2 doubles per zone, so tens of thousands of levels means GB-class
  // workspaces -- exactly the regime where "memory constraints require
  // idling 60% of CPU cores".
  const double cpu_mem = 13.0 * double(1ull << 30);
  const double gpu_mem = 16.0 * double(1ull << 30);

  std::vector<kinetics::Zone> zones(64, kinetics::Zone{0.7, 1.5});
  core::Table t({"Model (levels)", "workspace/zone (MB)", "CPU active cores",
                 "GPU/CPU rate", "note"});

  struct Case {
    std::size_t levels;
    const char* note;
  };
  const Case cases[] = {{250, "small"},
                        {1000, ""},
                        {4000, "second largest (paper: 5.75X)"},
                        {8000, "largest (CPU idles ~60%+ of cores)"}};

  double second_largest_ratio = 0.0, largest_ratio = 0.0;
  std::size_t largest_active = 0;
  for (const auto& c : cases) {
    auto model = kinetics::make_model(c.levels);
    auto cpu = core::make_cpu(hsim::machines::power9());
    auto gpu = core::make_device(hsim::machines::v100());
    auto rep_cpu = kinetics::process_zones(
        cpu, model, zones, kinetics::SolveMethod::DenseDirect,
        kinetics::ThreadMode::ZoneParallel, cpu_cores, cpu_mem);
    auto rep_gpu = kinetics::process_zones(
        gpu, model, zones, kinetics::SolveMethod::DenseDirect,
        kinetics::ThreadMode::TransitionParallel, gpu_lanes, gpu_mem);
    const double ratio = rep_cpu.modeled_time / rep_gpu.modeled_time;
    if (c.levels == 4000) second_largest_ratio = ratio;
    if (c.levels == 8000) {
      largest_ratio = ratio;
      largest_active = rep_cpu.active_workers;
    }
    t.row({std::to_string(c.levels),
           core::Table::num(model.workspace_bytes() / 1e6, 1),
           std::to_string(rep_cpu.active_workers) + "/" +
               std::to_string(cpu_cores),
           core::Table::num(ratio, 2) + "X", c.note});
  }
  t.print();
  std::printf("\nGPU speedup for the largest model (%0.2fX) exceeds the"
              " second-largest (%0.2fX) because only %zu of %zu CPU cores"
              " fit a workspace.\n\n",
              largest_ratio, second_largest_ratio, largest_active,
              cpu_cores);

  // Projection: port the fine-grained (transition-parallel) threading to
  // the CPU so workspaces are shared -- the paper projects 2.5X+.
  auto model = kinetics::make_model(8000);
  auto cpu1 = core::make_cpu(hsim::machines::power9());
  auto cpu2 = core::make_cpu(hsim::machines::power9());
  auto zone_par = kinetics::process_zones(
      cpu1, model, zones, kinetics::SolveMethod::DenseDirect,
      kinetics::ThreadMode::ZoneParallel, cpu_cores, cpu_mem);
  auto trans_par = kinetics::process_zones(
      cpu2, model, zones, kinetics::SolveMethod::DenseDirect,
      kinetics::ThreadMode::TransitionParallel, cpu_cores, cpu_mem);
  std::printf("CPU fine-threading projection on the largest model: %0.2fX"
              " (paper: \"2.5X speedups or more\").\n",
              zone_par.modeled_time / trans_par.modeled_time);
  return 0;
}
