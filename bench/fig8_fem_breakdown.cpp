// Figure 8 reproduction: "Timing breakdown of nonlinear diffusion problem"
// -- linear-system formulation, preconditioner setup, and solve phases for
// a ~1M-dof high-order problem, single P8 CPU thread vs one P100. The
// coupled solver runs for real; each phase's kernels are priced on both
// machines (per-phase counters from the timeline).
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/table.hpp"
#include "fem/fem.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

COE_BENCH_MAIN(fig8_fem_breakdown) {
  std::printf("=== Figure 8: nonlinear diffusion timing breakdown ===\n");
  std::printf("Paper setup: 1M dofs, SUNDIALS CVODE + MFEM partial assembly"
              " + hypre BoomerAMG on the low-order-refined operator.\n");
  std::printf("This run: p = 4, reduced dof count for bench runtime; same"
              " phases, same code path.\n\n");

  fem::DiffusionConfig cfg;
  cfg.order = 4;
  cfg.nx = 64;  // (64*4 + 1)^2 = 66049 dofs
  cfg.t_final = 2e-4;
  cfg.dt_init = 1e-4;
  cfg.rtol = 1e-4;
  cfg.max_timesteps = 2;

  auto gpu = core::make_device(hsim::machines::p100());
  gpu.set_trace(&bench.trace());  // per-launch events for exact repricing
  cfg.profiler = &bench.profiler();  // hierarchical spans -> PROF_*.json
  fem::NonlinearDiffusion app(gpu, cfg);
  auto rep = app.run();

  std::printf("dofs = %zu, timesteps = %zu, Newton iters = %zu, "
              "CG solves = %zu (avg %.1f iters)\n\n",
              rep.dofs, rep.ode.steps, rep.ode.newton_iters, rep.cg_solves,
              rep.cg_solves
                  ? double(rep.cg_iterations) / double(rep.cg_solves)
                  : 0.0);

  // Per-phase times on the P100 (primary model) and a P8 thread. The CPU
  // column reprices every traced launch individually — the aggregate
  // CostModel::predict(ph.counters) is only a lower bound when a phase
  // mixes compute- and memory-bound kernels (see cost.hpp).
  const hsim::CostModel cpu(hsim::machines::power8_thread());
  core::Table t({"Phase", "P8 1-thread (s)", "P100 (s)", "speedup"});
  double cpu_total = 0.0, gpu_total = 0.0;
  // The profiler tags CG-internal kernels with nested paths
  // ("solve/cg/spmv"); fold those into their top-level phase so the table
  // keeps the figure's three-row shape. reprice's phase filter is
  // hierarchical, so the grouped name re-prices the whole subtree.
  std::vector<std::pair<std::string, double>> groups;
  for (const auto& ph : gpu.timeline().phases()) {
    const std::string head = ph.name.substr(0, ph.name.find('/'));
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == head; });
    if (it == groups.end()) {
      groups.emplace_back(head, ph.seconds);
    } else {
      it->second += ph.seconds;
    }
  }
  for (const auto& [name, seconds] : groups) {
    const double t_gpu = seconds;
    const double t_cpu = hsim::reprice(bench.trace(), cpu, name);
    cpu_total += t_cpu;
    gpu_total += t_gpu;
    t.row({name, core::Table::sci(t_cpu, 3), core::Table::sci(t_gpu, 3),
           core::Table::num(t_cpu / t_gpu, 2)});
  }
  t.row({"total", core::Table::sci(cpu_total, 3),
         core::Table::sci(gpu_total, 3),
         core::Table::num(cpu_total / gpu_total, 2)});
  t.print();

  std::printf("\nShape checks (Fig. 8): the solve phase dominates on both"
              " machines; every phase accelerates on the GPU; the new"
              " partial-assembly algorithms keep formulation cheap.\n");

  bench.add_context("p100", gpu);
  bench.add_machine("power8_thread", cpu_total);
  bench.metrics().set("fig8.speedup", cpu_total / gpu_total);
  bench.metrics().set("fig8.dofs", static_cast<double>(rep.dofs));
  return 0;
}
