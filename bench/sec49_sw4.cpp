// Section 4.9 + abstract reproduction (SW4/sw4lite): the GPU kernel
// optimization ladder (shared-memory tiling ~2X, kernel fusion, forcing
// offload ~2X) and the headline throughput claim -- "up to a 14X
// throughput increase over Cori" per node, with 256 Sierra nodes matching
// Cori-II time on the Hayward-fault run.
#include <cmath>
#include <cstdio>

#include "core/table.hpp"
#include "stencil/distributed.hpp"
#include "stencil/wave.hpp"
#include "xray/xray.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

/// Runs the real wave kernel under the given options; returns modeled
/// seconds/step on the context's machine.
double ms_per_step(const hsim::MachineModel& mach, stencil::WaveOptions opts,
                   std::size_t n, int steps, bool with_sources) {
  auto ctx = core::make_device(mach);
  stencil::WaveSolver solver(ctx, n, n, n, 1.0, 1.0, opts);
  if (with_sources) {
    for (std::size_t s = 0; s < 64; ++s) {
      solver.add_source({s % n, (3 * s) % n, (7 * s) % n, 1.0, 2.0, 0.2});
    }
  }
  const double dt = solver.stable_dt();
  const double t0 = ctx.simulated_time();
  for (int s = 0; s < steps; ++s) solver.step(dt);
  return (ctx.simulated_time() - t0) / steps * 1e3;
}

}  // namespace

COE_BENCH_MAIN(sec49_sw4) {
  std::printf("=== Section 4.9: sw4lite optimization ladder + SW4 vs Cori"
              " ===\n\n");
  const std::size_t n = 64;
  const int steps = 10;
  const auto v100 = hsim::machines::v100();

  core::Table t({"Variant", "V100 ms/step", "gain"});
  stencil::WaveOptions base;
  base.tiled = false;
  base.fused = false;
  base.forcing_on_device = false;
  const double t_base = ms_per_step(v100, base, n, steps, true);
  t.row({"baseline (unfused, naive, host forcing)",
         core::Table::num(t_base, 3), "1.00x"});

  stencil::WaveOptions fused = base;
  fused.fused = true;
  const double t_fused = ms_per_step(v100, fused, n, steps, true);
  t.row({"+ kernel fusion", core::Table::num(t_fused, 3),
         core::Table::num(t_base / t_fused, 2) + "x"});

  stencil::WaveOptions tiled = fused;
  tiled.tiled = true;
  const double t_tiled = ms_per_step(v100, tiled, n, steps, true);
  t.row({"+ shared-memory tiling (paper: ~2x)",
         core::Table::num(t_tiled, 3),
         core::Table::num(t_fused / t_tiled, 2) + "x over fused"});

  stencil::WaveOptions offl = tiled;
  offl.forcing_on_device = true;
  const double t_offl = ms_per_step(v100, offl, n, steps, true);
  t.row({"+ forcing on device (paper: ~2x on forcing)",
         core::Table::num(t_offl, 3),
         core::Table::num(t_tiled / t_offl, 2) + "x over tiled"});
  t.print();

  // Percent of peak for the tiled stencil kernel. This run is also the
  // traced + spanned one behind the PROF/TRACE artifacts.
  {
    auto ctx = core::make_device(v100);
    ctx.set_trace(&bench.trace());
    stencil::WaveOptions traced = tiled;
    traced.profiler = &bench.profiler();
    stencil::WaveSolver solver(ctx, n, n, n, 1.0, 1.0, traced);
    const double dt = solver.stable_dt();
    for (int s = 0; s < steps; ++s) solver.step(dt);
    const double gflops = ctx.counters().flops / ctx.simulated_time() / 1e9;
    std::printf("\ntiled stencil sustained %.0f GFLOP/s = %.0f%% of V100"
                " peak. (The paper's ~40%%-of-peak kernels are SW4's"
                " curvilinear elastic operators at ~20x the arithmetic"
                " intensity of this scalar-wave proxy; a bandwidth-bound"
                " proxy tops out near bw*AI/peak.)\n",
                gflops, 100.0 * gflops * 1e9 / v100.peak_flops);
  }

  // Node-for-node throughput vs Cori-II (KNL): larger block so launch
  // overhead amortizes (the Hayward run keeps GPUs saturated).
  std::printf("\nHayward-fault class run, per-node throughput model:\n");
  const std::size_t nb = 160;
  // SW4's measured Cori-II performance sat well below STREAM (indirect
  // curvilinear accesses defeat the KNL prefetchers); derate accordingly.
  auto knl = hsim::machines::knl_node();
  knl.bw_efficiency = 0.45;
  // A Sierra node = 4 V100s with domain decomposition + NVLink halos.
  const double t_v100 = ms_per_step(v100, offl, nb, 4, false);
  const double sierra_node = t_v100 / (4.0 * 0.88);
  const double cori_node = ms_per_step(knl, offl, nb, 4, false);
  const double per_node = cori_node / sierra_node;
  std::printf("  Cori-II KNL node:  %.3f ms/step for a %zu^3 block\n",
              cori_node, nb);
  std::printf("  Sierra node (4x V100): %.3f ms/step -> %.1fX per node"
              " (abstract: \"up to a 14X throughput increase over"
              " Cori\")\n",
              sierra_node, per_node);
  // 256 Sierra nodes vs full Cori allocation: equal-time claim.
  const auto net_sierra = hsim::clusters::sierra(256);
  const double halo = stencil::halo_exchange_time(net_sierra, n) * 1e3;
  std::printf("  with halo exchange (%.3f ms/step) the 256-node Sierra run"
              " matches the paper's 10-hour Cori-II result at ~%.0fx fewer"
              " node-hours.\n",
              halo, per_node);

  bench.add_machine("cori_knl_node", cori_node * 1e-3);
  bench.add_machine("sierra_node", sierra_node * 1e-3);
  bench.metrics().set("sec49.per_node_speedup", per_node);

  // A small multi-node Hayward-style run, merged by coe::xray: 8 ranks on
  // the Sierra interconnect, every rank logging traffic + kernel trace.
  // This is the bench's XRAY_/XTRACE_ artifact; the distributed critical
  // path must tile the replay makespan.
  std::printf("\n8-rank distributed wave on sierra, merged by coe::xray:\n");
  const int dranks = 8;
  stencil::DistributedWaveConfig dcfg;
  dcfg.nx = 64;
  dcfg.ny = 16;
  dcfg.nz = 16;
  dcfg.steps = 6;
  const auto net8 = hsim::clusters::sierra(dranks);
  dcfg.cluster = &net8;
  net::NetLog dlog;
  dcfg.log = &dlog;
  dcfg.trace_ranks = true;
  const auto dres = stencil::distributed_wave_run(
      dranks, dcfg, [](double x, double y, double z) {
        return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
      });

  xray::MergeInputs in;
  in.log = &dlog;
  in.cluster = &net8;
  in.ranks = dranks;
  in.rank_traces = &dres.rank_traces;
  const auto rep = xray::analyze(in);
  const double tol = 1e-9 * std::max(1.0, rep.makespan_s);
  const bool xray_ok =
      rep.well_formed && std::abs(rep.critical_s - rep.makespan_s) <= tol;
  std::printf("  %zu matched messages, makespan %.3f ms, critical path"
              " coverage %.6f, imbalance ratio %.3f -> %s\n",
              rep.matched_messages, rep.makespan_s * 1e3, rep.coverage,
              rep.imbalance_ratio, xray_ok ? "ok" : "FAIL");
  xray::publish(rep, bench.metrics());
  if (bench.json_enabled() &&
      !xray::write_artifacts(bench.out_dir(), "sec49_sw4", rep,
                             &dres.rank_traces)) {
    std::fprintf(stderr, "sec49_sw4: failed to write XRAY artifacts\n");
  }
  return xray_ok ? 0 : 1;
}
