// Figure 6 reproduction: "ParaDyn execution results: time and load/store"
// -- the element-update kernel as many small loops vs the SLNSP-fused
// form, with and without dead-store elimination. Loads/stores are counted
// exactly; times are both measured on the host (real single-core wall
// time) and modeled on the V100.
#include <chrono>
#include <cstdio>

#include "core/table.hpp"
#include "dyn/paradyn.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

double wall_seconds(dyn::LoopVariant v, std::size_t n, std::size_t steps) {
  dyn::ElementArrays a(n);
  auto ctx = core::make_seq();
  const auto t0 = std::chrono::steady_clock::now();
  dyn::run_update(ctx, a, steps, v);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

COE_BENCH_MAIN(fig6_paradyn) {
  std::printf("=== Figure 6: ParaDyn SLNSP + dead-store elimination ===\n\n");
  const std::size_t n = 1 << 20;  // 1M elements
  const std::size_t steps = 20;

  core::Table t({"Variant", "kernels/step", "loads/elem", "stores/elem",
                 "V100 time (ms)", "host time (ms)", "speedup vs small"});
  double base_model = 0.0, base_host = 0.0;
  for (auto v : {dyn::LoopVariant::SmallLoops, dyn::LoopVariant::Fused,
                 dyn::LoopVariant::FusedDse}) {
    dyn::ElementArrays a(n);
    auto gpu = core::make_device();
    const auto counts = dyn::run_update(gpu, a, steps, v);
    const double model_ms = gpu.simulated_time() / double(steps) * 1e3;
    const double host_ms = wall_seconds(v, n, steps) / double(steps) * 1e3;
    if (v == dyn::LoopVariant::SmallLoops) {
      base_model = model_ms;
      base_host = host_ms;
    }
    bench.add_context(dyn::to_string(v), gpu);
    bench.metrics().set(std::string("fig6.") + dyn::to_string(v) +
                            ".model_ms",
                        model_ms);
    t.row({dyn::to_string(v), std::to_string(counts.kernels / steps),
           std::to_string(counts.loads / steps / n),
           std::to_string(counts.stores / steps / n),
           core::Table::num(model_ms, 3), core::Table::num(host_ms, 3),
           core::Table::num(base_model / model_ms, 2) + "x model / " +
               core::Table::num(base_host / host_ms, 2) + "x host"});
  }
  t.print();
  std::printf("\nPaper claims: SLNSP improves performance by almost 2X,"
              " roughly matching the reduction in loads; dead-store"
              " elimination adds ~20%%.\n");
  return 0;
}
