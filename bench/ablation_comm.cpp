// Communication-preparation ablation (DESIGN.md section 15): the three
// moves the paper's scaling work leans on, measured on the coe::net layer.
//
//  1. Collective algorithm scaling: total messages per allreduce for the
//     naive all-to-all O(P^2), recursive doubling O(P log P), and the
//     bandwidth-optimal ring, with alpha-beta modeled times at a
//     latency-bound and a bandwidth-bound payload, plus the algorithm
//     select_allreduce actually picks. Small rank counts are additionally
//     run on the real mailbox substrate to pin the closed forms to
//     measured traffic.
//  2. Halo aggregation + overlap on the 64-rank distributed wave driver:
//     the 2x2 {aggregate, overlap} matrix, each leg's traffic replayed
//     through net::reprice. The headline compares the repriced timeline
//     against the old fully-sequentialized network bound (the quantity the
//     per-link occupancy model replaces) and the prepared schedule against
//     the unprepared one; the field must be bitwise identical across all
//     legs, because aggregation and overlap reorder messages, not
//     arithmetic.
//  3. Straggler hunt on the same 64-rank run: rank 37 deliberately models
//     4x the compute cost per point (the arithmetic is untouched — the
//     field stays bitwise identical), every rank logs its traffic and
//     kernel trace, and coe::xray merges the logs into one report. The
//     merged view must name the injected straggler, blame its neighbors'
//     lost time on comm-wait (they stall in halo receives; they are not
//     slow themselves), and its distributed critical path must tile the
//     replay makespan exactly.
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "net/net.hpp"
#include "stencil/distributed.hpp"
#include "xray/xray.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

/// Runs one real allreduce on the mailbox substrate and returns the total
/// message count the world recorded.
std::size_t measured_messages(net::AllreduceAlgo algo, int ranks) {
  const auto stats = mpi::run(ranks, [&](mpi::Communicator& comm) {
    std::vector<double> v(8, double(comm.rank()));
    net::allreduce_sum(comm, v, algo);
  });
  return stats.messages;
}

}  // namespace

COE_BENCH_MAIN(ablation_comm) {
  std::printf("=== Communication preparation: collectives, aggregation,"
              " overlap ===\n\n");

  // --- 1. Allreduce algorithm scaling -----------------------------------
  const auto cl = hsim::clusters::cori(64);
  const std::size_t small = 64;        // 8 doubles: latency-bound
  const std::size_t large = 8u << 20;  // 8 MiB: bandwidth-bound
  std::printf("allreduce on %s (alpha %.2g s, %.0f GB/s injection)\n\n",
              cl.name.c_str(), cl.alpha, cl.effective_injection_bw() / 1e9);
  core::Table t({"ranks", "naive msgs", "rd msgs", "ring msgs",
                 "rd ms @8B", "ring ms @8B", "rd ms @8MiB", "ring ms @8MiB",
                 "pick @8B", "pick @8MiB"});
  for (const int p : {4, 8, 16, 32, 64, 128}) {
    const auto naive =
        net::allreduce_messages(net::AllreduceAlgo::Naive, p);
    const auto rd = net::allreduce_messages(
        net::AllreduceAlgo::RecursiveDoubling, p);
    const auto ring = net::allreduce_messages(net::AllreduceAlgo::Ring, p);
    const double rd_s = net::modeled_allreduce(
        net::AllreduceAlgo::RecursiveDoubling, cl, small, p);
    const double ring_s =
        net::modeled_allreduce(net::AllreduceAlgo::Ring, cl, small, p);
    const double rd_l = net::modeled_allreduce(
        net::AllreduceAlgo::RecursiveDoubling, cl, large, p);
    const double ring_l =
        net::modeled_allreduce(net::AllreduceAlgo::Ring, cl, large, p);
    t.row({std::to_string(p), std::to_string(naive), std::to_string(rd),
           std::to_string(ring), core::Table::num(rd_s * 1e3, 4),
           core::Table::num(ring_s * 1e3, 4),
           core::Table::num(rd_l * 1e3, 2),
           core::Table::num(ring_l * 1e3, 2),
           net::algo_name(net::select_allreduce(cl, small, p)),
           net::algo_name(net::select_allreduce(cl, large, p))});
    const std::string pre = "net.allreduce.p" + std::to_string(p) + ".";
    bench.metrics().set(pre + "naive.messages", double(naive));
    bench.metrics().set(pre + "rd.messages", double(rd));
    bench.metrics().set(pre + "ring.messages", double(ring));
  }
  t.print();
  std::printf("\nnaive grows O(P^2); recursive doubling O(P log P) wins the"
              " latency-bound regime, the ring's 2(P-1)/P byte volume wins"
              " the bandwidth-bound one.\n\n");

  // Pin the closed forms to real substrate traffic at small scale.
  core::Table tm({"ranks", "algo", "formula", "measured"});
  bool formulas_hold = true;
  for (const int p : {4, 7, 8}) {
    for (const auto algo : {net::AllreduceAlgo::Naive,
                            net::AllreduceAlgo::RecursiveDoubling,
                            net::AllreduceAlgo::Ring}) {
      const auto formula = net::allreduce_messages(algo, p);
      const auto measured = measured_messages(algo, p);
      formulas_hold = formulas_hold && measured == formula;
      tm.row({std::to_string(p), net::algo_name(algo),
              std::to_string(formula), std::to_string(measured)});
      if (p == 8) {
        bench.metrics().set(std::string("net.allreduce.measured.p8.") +
                                net::algo_name(algo) + ".messages",
                            double(measured));
      }
    }
  }
  tm.print();
  std::printf("formulas %s measured substrate traffic\n\n",
              formulas_hold ? "match" : "DO NOT match");

  // --- 2. 64-rank distributed wave: aggregation x overlap ----------------
  const int ranks = 64;
  stencil::DistributedWaveConfig cfg;
  cfg.nx = 512;  // 8 interior planes per rank: room to overlap
  cfg.ny = 16;
  cfg.nz = 16;
  cfg.steps = 8;
  const auto wire = hsim::clusters::ethernet(ranks);
  cfg.cluster = &wire;
  auto u0 = [](double x, double y, double z) {
    return std::sin(M_PI * x) * std::sin(2.0 * M_PI * y) *
           std::sin(M_PI * z);
  };
  std::printf("=== Distributed wave, %d ranks, %zux%zux%zu, %d steps on"
              " %s ===\n\n",
              ranks, cfg.nx, cfg.ny, cfg.nz, cfg.steps, wire.name.c_str());

  core::Table tw({"aggregate", "overlap", "msgs", "timeline ms",
                  "sequential ms", "vs seq bound", "bitwise"});
  stencil::DistributedWaveResult prepared, unprepared;
  std::vector<double> ref_field;
  bool bitwise = true;
  for (const bool aggregate : {false, true}) {
    for (const bool overlap : {false, true}) {
      cfg.aggregate_halos = aggregate;
      cfg.overlap = overlap;
      auto res = stencil::distributed_wave_run(ranks, cfg, u0);
      if (ref_field.empty()) {
        ref_field = res.field;
      } else {
        bitwise = bitwise && res.field == ref_field;
      }
      const auto& m = res.modeled;
      tw.row({aggregate ? "yes" : "no", overlap ? "yes" : "no",
              std::to_string(m.messages),
              core::Table::num(m.timeline_s * 1e3, 3),
              core::Table::num(m.sequential_s * 1e3, 3),
              core::Table::num(m.speedup(), 2) + "x",
              res.field == ref_field ? "yes" : "NO"});
      if (!aggregate && !overlap) unprepared = std::move(res);
      if (aggregate && overlap) prepared = std::move(res);
    }
  }
  tw.print();

  const auto& pm = prepared.modeled;
  const double schedule_speedup =
      pm.timeline_s > 0.0 ? unprepared.modeled.timeline_s / pm.timeline_s
                          : 1.0;
  std::printf("\nprepared (aggregate + overlap): %zu messages, timeline"
              " %.3f ms vs sequentialized bound %.3f ms -> %.2fx; vs the"
              " unprepared schedule -> %.2fx; fields bitwise %s\n",
              pm.messages, pm.timeline_s * 1e3, pm.sequential_s * 1e3,
              pm.speedup(), schedule_speedup,
              bitwise ? "identical" : "DIFFER");
  std::printf("bisection floor %.3f ms, compute critical path %.3f ms,"
              " replay %s\n",
              pm.bisection_floor_s * 1e3, pm.compute_s * 1e3,
              pm.well_formed ? "well-formed" : "NOT WELL-FORMED");

  bench.metrics().set("net.headline.messages", double(pm.messages));
  bench.metrics().set("net.headline.bytes", pm.bytes);
  bench.metrics().set("net.headline.timeline_s", pm.timeline_s);
  bench.metrics().set("net.headline.sequential_s", pm.sequential_s);
  bench.metrics().set("net.headline.comm_sequential_s",
                      pm.comm_sequential_s);
  bench.metrics().set("net.headline.compute_s", pm.compute_s);
  bench.metrics().set("net.headline.bisection_floor_s",
                      pm.bisection_floor_s);
  bench.metrics().set("net.headline.speedup", pm.speedup());
  bench.metrics().set("net.headline.schedule_speedup", schedule_speedup);
  bench.metrics().set("net.headline.bitwise", bitwise ? 1.0 : 0.0);
  bench.metrics().set("net.baseline.messages",
                      double(unprepared.modeled.messages));
  bench.metrics().set("net.baseline.timeline_s",
                      unprepared.modeled.timeline_s);
  bench.add_machine("wave64_prepared_timeline", pm.timeline_s);
  bench.add_machine("wave64_sequential_bound", pm.sequential_s);
  bench.add_machine("wave64_unprepared_timeline",
                    unprepared.modeled.timeline_s);

  // --- 3. Straggler hunt: skewed wave through the coe::xray merge --------
  cfg.aggregate_halos = true;
  cfg.overlap = true;
  cfg.skew_rank = 37;
  cfg.skew_factor = 4.0;
  cfg.trace_ranks = true;
  net::NetLog xlog;
  cfg.log = &xlog;
  const auto skewed = stencil::distributed_wave_run(ranks, cfg, u0);
  const bool skew_bitwise = skewed.field == ref_field;

  xray::MergeInputs in;
  in.log = &xlog;
  in.cluster = &wire;
  in.ranks = ranks;
  in.rank_traces = &skewed.rank_traces;
  const auto rep = xray::analyze(in);
  std::printf("\n%s\n",
              xray::straggler_report(
                  rep, "skewed wave, 64 ranks, rank 37 at 4.0x compute")
                  .c_str());

  const double tol = 1e-9 * std::max(1.0, rep.makespan_s);
  const bool path_tiles =
      rep.well_formed && std::abs(rep.critical_s - rep.makespan_s) <= tol;
  // Rank 37's extra time is its own compute; its neighbors' extra time is
  // waiting for rank 37's halos. Both neighbors must spend more on
  // comm-wait than on idle imbalance, and a larger comm-wait share than
  // the straggler itself (the straggler computes while they wait).
  const auto& b36 = rep.blame[36];
  const auto& b37 = rep.blame[37];
  const auto& b38 = rep.blame[38];
  auto comm_s = [](const xray::RankBlame& b) {
    return b.seconds[static_cast<std::size_t>(xray::Blame::CommWait)];
  };
  auto idle_s = [](const xray::RankBlame& b) {
    return b.seconds[static_cast<std::size_t>(xray::Blame::Imbalance)];
  };
  const bool neighbors_wait =
      comm_s(b36) > idle_s(b36) && comm_s(b38) > idle_s(b38) &&
      b36.pct(xray::Blame::CommWait) > b37.pct(xray::Blame::CommWait) &&
      b38.pct(xray::Blame::CommWait) > b37.pct(xray::Blame::CommWait);
  const bool xray_ok = rep.well_formed && rep.straggler_rank == 37 &&
                       rep.imbalance_ratio > 2.0 && path_tiles &&
                       neighbors_wait && skew_bitwise;
  std::printf("xray verdict: straggler rank %d (ratio %.2f), critical path"
              " %s the makespan (|%.3g s|), neighbors %s on comm-wait,"
              " skewed field bitwise %s -> %s\n",
              rep.straggler_rank, rep.imbalance_ratio,
              path_tiles ? "tiles" : "DOES NOT tile",
              rep.critical_s - rep.makespan_s,
              neighbors_wait ? "majority" : "NOT majority",
              skew_bitwise ? "identical" : "DIFFER",
              xray_ok ? "ok" : "FAIL");

  xray::publish(rep, bench.metrics());
  bench.add_machine("wave64_skewed_makespan", rep.makespan_s);
  if (bench.json_enabled() &&
      !xray::write_artifacts(bench.out_dir(), "ablation_comm", rep,
                             &skewed.rank_traces)) {
    std::fprintf(stderr, "ablation_comm: failed to write XRAY artifacts\n");
  }

  return bitwise && pm.well_formed && formulas_hold && xray_ok ? 0 : 1;
}
