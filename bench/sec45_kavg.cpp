// Section 4.5 reproduction: KAVG vs ASGD vs synchronous SGD. Real training
// of a small network under simulated learner concurrency; the paper's
// claims: ASGD needs impractically small learning rates, KAVG scales with
// far fewer global reductions, and the optimal K is usually > 1.
#include <cstdio>

#include "core/table.hpp"
#include "ml/ml.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

COE_BENCH_MAIN(sec45_kavg) {
  std::printf("=== Section 4.5: KAVG vs ASGD distributed training ===\n\n");

  auto ds = ml::make_blobs(800, 10, 8, 0.85, 41);
  const std::vector<std::size_t> arch{10, 24, 8};

  // Algorithm comparison at an aggressive learning rate (16 learners).
  core::Table t({"Algorithm", "lr", "grad budget", "comm rounds",
                 "final loss", "final accuracy", "status"});
  for (auto algo : {ml::DistAlgo::SyncSgd, ml::DistAlgo::Asgd,
                    ml::DistAlgo::Kavg}) {
    ml::DenseNet net(arch, 7);
    ml::DistConfig cfg;
    cfg.learners = 16;
    cfg.lr = 0.8;
    cfg.k = 4;
    cfg.gradient_budget = 4000;
    auto res = ml::train_distributed(net, ds, algo, cfg);
    t.row({ml::to_string(algo), "0.8", std::to_string(cfg.gradient_budget),
           std::to_string(res.comm_rounds),
           res.diverged ? "inf" : core::Table::num(res.final_loss, 3),
           core::Table::num(100.0 * res.final_accuracy, 1) + "%",
           res.diverged ? "DIVERGED" : "ok"});
  }
  t.print();

  // ASGD at the learning rate it can actually tolerate.
  {
    ml::DenseNet net(arch, 7);
    ml::DistConfig cfg;
    cfg.learners = 16;
    cfg.lr = 0.05;  // "usually too small for practical purposes"
    cfg.gradient_budget = 4000;
    auto res = ml::train_distributed(net, ds, ml::DistAlgo::Asgd, cfg);
    std::printf("\nASGD with the stability-limited lr=0.05: accuracy %.1f%%"
                " after the same budget (slow convergence).\n",
                100.0 * res.final_accuracy);
  }

  // K sweep: the optimal K for accuracy-per-budget is > 1.
  std::printf("\nKAVG K sweep (16 learners, lr 0.8, fixed budget):\n");
  core::Table k({"K", "comm rounds", "final loss", "final accuracy"});
  for (std::size_t kk : {1, 2, 4, 8, 16, 32}) {
    ml::DenseNet net(arch, 7);
    ml::DistConfig cfg;
    cfg.learners = 16;
    cfg.lr = 0.8;
    cfg.k = kk;
    cfg.gradient_budget = 4000;
    auto res = ml::train_distributed(net, ds, ml::DistAlgo::Kavg, cfg);
    k.row({std::to_string(kk), std::to_string(res.comm_rounds),
           core::Table::num(res.final_loss, 3),
           core::Table::num(100.0 * res.final_accuracy, 1) + "%"});
  }
  k.print();
  std::printf("\nPaper: \"the optimal K for convergence is usually greater"
              " than one, so frequent global reductions are unnecessary\".\n");
  return 0;
}
