// Section 4.6 reproduction (Molecular Dynamics): ddcMD (double precision,
// whole MD loop resident on the GPU) vs the GROMACS-like baseline (single
// precision nonbonded on the GPU, bonded + integration on the CPU, with
// per-step transfers). Paper numbers: 2.31 ms/step vs 2.88 ms/step on
// 1 GPU + 1 CPU; 1.3X at 4 GPUs; 2.3X inside MuMMI where GROMACS loses its
// CPUs to the macro model and in-situ analysis.
#include <cstdio>

#include "core/table.hpp"
#include "md/md.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

struct RunResult {
  double gpu_ms = 0.0;   ///< device kernel + transfer time per step
  double cpu_ms = 0.0;   ///< host-side work per step (Split placement)
};

RunResult run_martini(md::Placement placement, int steps,
                      bench::Harness* h = nullptr) {
  core::Rng rng(99);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, 24, 0.45, 1.0, rng);  // 13824 CG beads
  auto gpu = core::make_device(hsim::machines::v100());
  auto cpu = core::make_cpu(hsim::machines::power9_socket());
  md::SimConfig cfg;
  cfg.dt = 0.002;
  cfg.thermostat = md::Thermostat::Langevin;
  cfg.temperature = 1.0;
  cfg.placement = placement;
  if (h) {
    // Trace + span the instrumented run for the PROF/TRACE artifacts.
    gpu.set_trace(&h->trace());
    cfg.profiler = &h->profiler();
  }
  md::Simulation<md::MartiniPair> sim(gpu, cpu, std::move(p), box,
                                      md::MartiniPair(1.0, 1.0, 0.2, 2.0),
                                      cfg);
  // Bonded terms: CG lipid-like dimers.
  std::vector<md::Bond> bonds;
  for (std::uint32_t i = 0; i + 1 < sim.particles().n; i += 2) {
    bonds.push_back({i, i + 1, 0.9, 50.0});
  }
  sim.set_bonds(std::move(bonds));

  const double g0 = gpu.simulated_time();
  const double c0 = cpu.simulated_time();
  for (int s = 0; s < steps; ++s) sim.step();
  RunResult r;
  r.gpu_ms = (gpu.simulated_time() - g0) / steps * 1e3;
  r.cpu_ms = (cpu.simulated_time() - c0) / steps * 1e3;
  return r;
}

}  // namespace

COE_BENCH_MAIN(sec46_md) {
  std::printf("=== Section 4.6: ddcMD vs GROMACS-like baseline ===\n\n");
  const int steps = 50;

  const auto ddc = run_martini(md::Placement::AllGpu, steps, &bench);
  const auto gmx = run_martini(md::Placement::Split, steps);

  // ddcMD: everything on the GPU, double precision, 46 launch-time
  // generated kernels specialized to the force field.
  const double ddc_ms = ddc.gpu_ms + ddc.cpu_ms;
  // GROMACS-like: single precision halves the bytes (0.5x) but the 8
  // generic kernels leave ~1.9x on the table vs ddcMD's specialized ones;
  // bonded + integration run on the CPU behind per-step transfers, with
  // 30% hidden by GROMACS's overlap scheduler, plus a fixed ~20 us of
  // per-step CPU-GPU synchronization.
  const double kGeneric = 1.9, kPrecision = 0.5, kSyncMs = 0.020;
  const double gmx_gpu = kPrecision * kGeneric * gmx.gpu_ms;
  const double gmx_ms = gmx_gpu + 0.7 * gmx.cpu_ms + kSyncMs;
  // MuMMI: the CPUs run the macro model + in-situ analysis, so the
  // GROMACS CPU share is exposed in full and contended (2.5x).
  const double gmx_mummi_ms = gmx_gpu + 2.5 * gmx.cpu_ms + kSyncMs;

  core::Table t({"Configuration", "paper ms/step", "model ms/step",
                 "ddcMD advantage"});
  t.row({"ddcMD, 1 GPU (all-resident, double)", "2.31",
         core::Table::num(ddc_ms, 3), "-"});
  t.row({"GROMACS-like, 1 GPU + 1 CPU (split, single)", "2.88",
         core::Table::num(gmx_ms, 3),
         core::Table::num(gmx_ms / ddc_ms, 2) + "x (paper 1.25x)"});
  t.row({"GROMACS-like inside MuMMI (CPUs taken)", "-",
         core::Table::num(gmx_mummi_ms, 3),
         core::Table::num(gmx_mummi_ms / ddc_ms, 2) + "x (paper 2.3x)"});
  t.print();

  std::printf("\n4-GPU strong scaling of this small system (45%%"
              " efficiency for both -- halo-dominated); GROMACS also gets"
              " 4 CPUs for its bonded share.\n");
  const double eff4 = 4.0 * 0.45;
  const double ddc4 = ddc.gpu_ms / eff4;
  const double gmx4 = gmx_gpu / eff4 + 0.7 * gmx.cpu_ms / 4.0 + kSyncMs;
  std::printf("  ddcMD 4 GPUs: %.3f ms/step; GROMACS-like: %.3f ms/step ->"
              " %.2fx (paper: 1.3x)\n",
              ddc4, gmx4, gmx4 / ddc4);
  std::printf("\nKernel granularity: ddcMD fuses the whole MD loop into"
              " device kernels (46 kernels in the real code); the baseline"
              " ships positions down and forces back every step.\n");
  return 0;
}
