// Section 4.1 reproduction (Cardioid): the Melodee rational-polynomial
// ladder -- libm rates vs runtime-coefficient rational fits vs the
// constant-specialized variant (real single-core wall time) -- and the
// data-placement study (all-GPU vs CPU-diffusion split, modeled).
#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/table.hpp"
#include "reaction/monodomain.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

double time_reaction_kernel(reaction::RateKind kind, std::size_t cells,
                            std::size_t steps) {
  reaction::MembraneKernel kernel(kind);
  std::vector<reaction::CellState> pop(cells);
  auto ctx = core::make_seq();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < steps; ++s) kernel.step(ctx, pop, 0.01);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Middle rung of the ladder: the same dt-baked Rush-Larsen fits, but
/// evaluated through RationalFit (heap-resident, runtime-degree Clenshaw)
/// instead of the fixed-degree specialized form the kernel uses.
double time_runtime_rational(std::size_t cells, std::size_t steps) {
  using namespace reaction;
  const double lo = -100.0, hi = 60.0;
  const double dt = 0.01;
  auto rlb = [dt](double a, double b) { return std::exp(-dt * (a + b)); };
  auto make_a = [&](double (*al)(double), double (*be)(double)) {
    return RationalFit(
        [=](double v) {
          const double a = al(v), b = be(v);
          return a / (a + b) * (1.0 - rlb(a, b));
        },
        lo, hi, 7, 4);
  };
  auto make_b = [&](double (*al)(double), double (*be)(double)) {
    return RationalFit([=](double v) { return rlb(al(v), be(v)); }, lo, hi,
                       7, 4);
  };
  RationalFit a[3] = {make_a(rates::alpha_m, rates::beta_m),
                      make_a(rates::alpha_h, rates::beta_h),
                      make_a(rates::alpha_n, rates::beta_n)};
  RationalFit b[3] = {make_b(rates::alpha_m, rates::beta_m),
                      make_b(rates::alpha_h, rates::beta_h),
                      make_b(rates::alpha_n, rates::beta_n)};
  std::vector<CellState> pop(cells);
  MembraneKernel current_only(RateKind::Libm);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < steps; ++s) {
    for (auto& c : pop) {
      c.m = a[0](c.v) + b[0](c.v) * c.m;
      c.h = a[1](c.v) + b[1](c.v) * c.h;
      c.n = a[2](c.v) + b[2](c.v) * c.n;
      c.v += dt * (-current_only.ionic_current(c));
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

COE_BENCH_MAIN(sec41_cardioid) {
  std::printf("=== Section 4.1 (Cardioid): reaction kernels + placement ===\n\n");

  const std::size_t cells = 20000, steps = 100;
  const double t_libm = time_reaction_kernel(reaction::RateKind::Libm, cells,
                                             steps);
  const double t_rat = time_runtime_rational(cells, steps);
  const double t_spec = time_reaction_kernel(reaction::RateKind::Rational,
                                             cells, steps);

  core::Table t({"Rate evaluation", "host ms/step", "speedup vs libm"});
  t.row({"libm (exp calls)", core::Table::num(1e3 * t_libm / steps, 3),
         "1.00x"});
  t.row({"rational, runtime coeffs",
         core::Table::num(1e3 * t_rat / steps, 3),
         core::Table::num(t_libm / t_rat, 2) + "x"});
  t.row({"rational, specialized ('compile-time constants')",
         core::Table::num(1e3 * t_spec / steps, 3),
         core::Table::num(t_libm / t_spec, 2) + "x"});
  t.print();
  bench.metrics().set("sec41.rational_speedup", t_libm / t_rat);
  bench.metrics().set("sec41.specialized_speedup", t_libm / t_spec);
  std::printf("\nPaper: \"replacing expensive functions with run-time"
              " rational polynomials was essential\"; \"changing run-time"
              " polynomial coefficients into compile-time constants could"
              " yield significant performance\".\n\n");

  // Placement study: all-GPU vs CPU diffusion + GPU reaction (Sec 4.1:
  // "the team decided to perform all computations on the GPU to minimize
  // data migration").
  core::Table p({"Placement", "modeled ms/step (P100 era)",
                 "per-step transfers"});
  for (auto placement : {reaction::TissuePlacement::AllGpu,
                         reaction::TissuePlacement::SplitCpuDiffusion}) {
    auto gpu = core::make_device(hsim::machines::p100());
    auto cpu = core::make_cpu(hsim::machines::power8());
    reaction::TissueConfig cfg;
    cfg.nx = cfg.ny = 96;
    cfg.placement = placement;
    cfg.profiler = &bench.profiler();
    if (placement == reaction::TissuePlacement::AllGpu) {
      // Trace the all-GPU run (the paper's choice) for the PROF artifact.
      gpu.set_trace(&bench.trace());
    }
    reaction::Monodomain tissue(gpu, cpu, cfg);
    const auto tr0 = gpu.counters().transfers;
    const double s0 = gpu.simulated_time() + cpu.simulated_time();
    const int steps2 = 50;
    for (int s = 0; s < steps2; ++s) tissue.step();
    const double ms =
        (gpu.simulated_time() + cpu.simulated_time() - s0) / steps2 * 1e3;
    p.row({placement == reaction::TissuePlacement::AllGpu
               ? "all kernels on GPU"
               : "diffusion on CPU + reaction on GPU",
           core::Table::num(ms, 4),
           std::to_string((gpu.counters().transfers - tr0) / steps2)});
  }
  p.print();
  std::printf("\nShape check: the split pays a voltage-field round trip"
              " every step and loses despite the 'free' CPU.\n");
  return 0;
}
