// Section 4.7 reproduction (Opt): the job-scheduler-simulator study.
// Claim 1: with rate-distributed arrivals, "job arrival rate should be
// throttled to less than the aggregated processing capacity of the GPUs."
// Claim 2: for batch arrivals, "Shortest Job First with Quota should be
// used to increase GPU utilization."
#include <cstdio>

#include "core/table.hpp"
#include "sched/scheduler.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

COE_BENCH_MAIN(sec47_sched) {
  std::printf("=== Section 4.7: job-scheduler policy study ===\n\n");

  const int gpus = 16;
  const double mean_dur = 60.0;
  const double capacity = gpus / mean_dur;  // jobs/s the node can absorb

  // Claim 1: arrival-rate sweep.
  std::printf("Poisson arrivals, FCFS, %d GPUs, mean job %gs (capacity ="
              " %.3f jobs/s):\n",
              gpus, mean_dur, capacity);
  core::Table a({"arrival rate / capacity", "mean wait (s)", "max wait (s)",
                 "utilization"});
  for (double frac : {0.5, 0.7, 0.9, 1.1, 1.4}) {
    auto jobs = sched::make_workload(
        {3000, mean_dur, 1.5, 0.0, frac * capacity, 7});
    sched::Simulator sim({gpus, sched::Policy::Fcfs, 0.0, 0});
    auto m = sim.run(jobs);
    a.row({core::Table::num(frac, 1), core::Table::num(m.mean_wait, 1),
           core::Table::num(m.max_wait, 1),
           core::Table::num(100.0 * m.utilization, 1) + "%"});
  }
  a.print();
  std::printf("-> waits explode past rate/capacity = 1: throttle below the"
              " aggregate GPU capacity.\n\n");

  // Claim 2: one batch of topology-optimization jobs, policy comparison.
  std::printf("Batch arrival (1000 heavy-tailed jobs at t=0), %d GPUs:\n",
              gpus);
  core::Table b({"Policy", "mean wait (s)", "max wait (s)",
                 "mean turnaround (s)", "utilization"});
  auto jobs = sched::make_workload({1000, mean_dur, 0.8, 0.1, 0.0, 21});
  for (auto p : {sched::Policy::Fcfs, sched::Policy::Sjf,
                 sched::Policy::SjfQuota}) {
    sched::SchedulerConfig cfg{gpus, p, 0.0, 0};
    cfg.metrics = &bench.metrics();  // sched.wait_s histogram + counters
    sched::Simulator sim(cfg);
    auto m = sim.run(jobs);
    bench.metrics().set(std::string("sec47.") + sched::to_string(p) +
                            ".utilization",
                        m.utilization);
    b.row({sched::to_string(p), core::Table::num(m.mean_wait, 1),
           core::Table::num(m.max_wait, 1),
           core::Table::num(m.mean_turnaround, 1),
           core::Table::num(100.0 * m.utilization, 2) + "%"});
  }
  b.print();
  std::printf("-> SJF slashes mean wait vs FCFS; the quota's long-job"
              " reserve keeps near-SJF mean wait while bounding the"
              " worst case.\n\n");

  // Starvation guard: a saturating short-job stream plus a few long jobs.
  std::printf("Long-job starvation under a saturating short stream:\n");
  auto mixed = sched::make_workload({4000, mean_dur, 1.5, 0.0,
                                     1.15 * capacity, 13});
  for (int i = 0; i < 8; ++i) {
    mixed.push_back(sched::Job{90000u + std::uint64_t(i), 100.0, 1800.0,
                               1800.0, 1});
  }
  core::Table c({"Policy", "max long-job wait (s)", "overall mean wait"});
  for (auto p : {sched::Policy::Sjf, sched::Policy::SjfQuota}) {
    sched::Simulator sim({gpus, p, 900.0, 4});
    auto m = sim.run(mixed);
    double longest = 0.0;
    for (const auto& o : sim.outcomes()) {
      if (o.job.duration >= 900.0) {
        longest = std::max(longest, o.start_time - o.job.submit_time);
      }
    }
    c.row({sched::to_string(p), core::Table::num(longest, 0),
           core::Table::num(m.mean_wait, 1)});
  }
  c.print();
  std::printf("-> the reserve caps how long a big topology-optimization job"
              " can be starved by the stream of small ones.\n");
  return 0;
}
