// Ablation studies for the design choices DESIGN.md calls out:
//   * AMG V-cycle preconditioning vs plain Jacobi-CG (iterations & cost)
//   * FEM partial vs full assembly: storage and apply cost vs order
//   * MD cell-list vs O(N^2) neighbor construction (real wall time)
//   * stencil kernel fusion (launch-overhead amortization vs grid size)
//   * scheduler quota-reserve size sweep
#include <chrono>
#include <cstdio>

#include "amg/amg.hpp"
#include "core/table.hpp"
#include "fem/fem.hpp"
#include "md/md.hpp"
#include "sched/scheduler.hpp"
#include "stencil/wave.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

void ablate_amg() {
  std::printf("--- AMG-preconditioned CG vs Jacobi-CG (2D Poisson) ---\n");
  core::Table t({"grid", "Jacobi-CG iters", "AMG-CG iters",
                 "AMG op complexity", "modeled V100 gain"});
  for (std::size_t n : {32, 64, 96}) {
    auto a = la::poisson2d(n, n);
    la::CsrOperator op(a);
    std::vector<double> b(a.rows(), 1.0);

    auto c1 = core::make_device();
    std::vector<double> x1(a.rows(), 0.0);
    la::JacobiPreconditioner jac(a);
    auto r1 = la::cg(c1, op, jac, b, x1, {4000, 1e-8, 0.0});

    auto c2 = core::make_device();
    std::vector<double> x2(a.rows(), 0.0);
    amg::BoomerAmg prec(a, {});
    auto r2 = la::cg(c2, op, prec, b, x2, {4000, 1e-8, 0.0});

    t.row({std::to_string(n) + "^2", std::to_string(r1.iterations),
           std::to_string(r2.iterations),
           core::Table::num(prec.operator_complexity(), 2),
           core::Table::num(c1.simulated_time() / c2.simulated_time(), 2) +
               "x"});
  }
  t.print();
  std::printf("\n");
}

void ablate_fem_assembly() {
  std::printf("--- FEM partial vs full assembly across order (fixed dofs)"
              " ---\n");
  core::Table t({"p", "dofs", "PA storage (KB)", "FA storage (KB)",
                 "PA host ms/apply", "FA host ms/apply"});
  for (std::size_t p : {1, 2, 4, 8}) {
    const std::size_t nx = 48 / p;
    fem::TensorMesh2D mesh(nx, nx, p);
    fem::EllipticOperator pa(mesh, fem::Assembly::Partial, 1.0, 1.0);
    fem::EllipticOperator fa(mesh, fem::Assembly::Full, 1.0, 1.0);
    std::vector<double> x(mesh.num_dofs(), 1.0), y(mesh.num_dofs());
    auto ctx = core::make_seq();
    fa.apply(ctx, x, y);  // trigger assembly outside the timer
    auto time_apply = [&](const fem::EllipticOperator& op) {
      const int reps = 200;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) op.apply(ctx, x, y);
      const auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double>(t1 - t0).count() / reps * 1e3;
    };
    t.row({std::to_string(p), std::to_string(mesh.num_dofs()),
           core::Table::num(pa.storage_bytes() / 1e3, 1),
           core::Table::num(fa.storage_bytes() / 1e3, 1),
           core::Table::num(time_apply(pa), 3),
           core::Table::num(time_apply(fa), 3)});
  }
  t.print();
  std::printf("-> CSR storage explodes with order; matrix-free stays"
              " flat (the MFEM team's motivation for the rewrite).\n\n");
}

void ablate_md_neighbors() {
  std::printf("--- MD neighbor construction: cell list vs O(N^2) ---\n");
  core::Table t({"N", "cell-list ms", "O(N^2) ms", "gain"});
  for (std::size_t side : {8, 12, 16}) {
    core::Rng rng(3);
    md::Particles p;
    md::Box box;
    md::init_lattice(p, box, side, 0.8, 1.0, rng);
    auto ctx = core::make_seq();
    md::NeighborList a(2.5, 0.3), b(2.5, 0.3);
    auto time_it = [&](auto&& fn) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < 5; ++r) fn();
      const auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double>(t1 - t0).count() / 5 * 1e3;
    };
    const double tc = time_it([&] { a.build(ctx, p, box); });
    const double tn = time_it([&] { b.build_n2(ctx, p, box); });
    t.row({std::to_string(p.n), core::Table::num(tc, 2),
           core::Table::num(tn, 2), core::Table::num(tn / tc, 1) + "x"});
  }
  t.print();
  std::printf("\n");
}

void ablate_stencil_fusion() {
  std::printf("--- Stencil kernel fusion vs grid size (modeled V100) ---\n");
  core::Table t({"grid", "unfused ms/step", "fused ms/step", "gain"});
  for (std::size_t n : {16, 32, 64, 128}) {
    auto run = [&](bool fused) {
      auto ctx = core::make_device();
      stencil::WaveOptions opts;
      opts.fused = fused;
      stencil::WaveSolver s(ctx, n, n, n, 1.0, 1.0, opts);
      const double dt = s.stable_dt();
      const double t0 = ctx.simulated_time();
      for (int k = 0; k < 5; ++k) s.step(dt);
      return (ctx.simulated_time() - t0) / 5 * 1e3;
    };
    const double tu = run(false), tf = run(true);
    t.row({std::to_string(n) + "^3", core::Table::num(tu, 4),
           core::Table::num(tf, 4), core::Table::num(tu / tf, 2) + "x"});
  }
  t.print();
  std::printf("-> fusion matters most on small per-GPU blocks (launch"
              " overhead), the strong-scaling regime SW4 runs in.\n\n");
}

void ablate_quota_size() {
  std::printf("--- SJF+Quota reserve-size sweep (16 GPUs, overloaded short"
              " stream + 8 long jobs) ---\n");
  auto make_jobs = [] {
    auto jobs = sched::make_workload({4000, 60.0, 1.5, 0.0,
                                      1.15 * 16.0 / 60.0, 13});
    for (int i = 0; i < 8; ++i) {
      jobs.push_back(sched::Job{90000u + std::uint64_t(i), 100.0, 1800.0,
                                1800.0, 1});
    }
    return jobs;
  };
  core::Table t({"reserve GPUs", "max long wait (s)", "mean wait (s)",
                 "utilization"});
  for (int reserve : {1, 2, 4, 8}) {
    sched::Simulator sim({16, sched::Policy::SjfQuota, 900.0, reserve});
    auto m = sim.run(make_jobs());
    double longest = 0.0;
    for (const auto& o : sim.outcomes()) {
      if (o.job.duration >= 900.0) {
        longest = std::max(longest, o.start_time - o.job.submit_time);
      }
    }
    t.row({std::to_string(reserve), core::Table::num(longest, 0),
           core::Table::num(m.mean_wait, 1),
           core::Table::num(100.0 * m.utilization, 1) + "%"});
  }
  t.print();
  std::printf("-> bigger reserves protect long jobs at growing cost to the"
              " short-job mean wait.\n");
}

}  // namespace

COE_BENCH_MAIN(ablations) {
  std::printf("=== Ablation studies ===\n\n");
  ablate_amg();
  ablate_fem_assembly();
  ablate_md_neighbors();
  ablate_stencil_fusion();
  ablate_quota_size();
  return 0;
}
