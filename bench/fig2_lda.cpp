// Figure 2 reproduction: "Default vs. optimized SparkPlug LDA performance"
// -- per-phase breakdown of one LDA iteration on 32 nodes, default stack
// (HotSpot + stock Spark) vs optimized stack (OpenJ9 + adaptive shuffle +
// scalable aggregate). A real variational-EM LDA run provides the
// per-iteration compute and sufficient-statistics sizes, scaled to the
// Wikipedia-class configuration.
#include <cstdio>

#include "analytics/lda.hpp"
#include "analytics/spark.hpp"
#include "core/table.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

COE_BENCH_MAIN(fig2_lda) {
  std::printf("=== Figure 2: SparkPlug LDA, default vs optimized stack ===\n");

  // Real LDA on a synthetic Zipf corpus: verifies the algorithm converges
  // and yields the per-word flop count used to scale the cost model.
  analytics::CorpusConfig ccfg;
  ccfg.vocab = 2000;
  ccfg.topics = 20;
  ccfg.docs = 400;
  ccfg.words_per_doc = 200;
  auto corpus = analytics::generate_corpus(ccfg);
  analytics::LdaConfig lcfg;
  lcfg.topics = 20;
  analytics::LdaModel model(corpus.vocab, lcfg);
  auto trace = model.train(corpus, 5);
  std::printf("real LDA: vocab=%zu topics=%zu docs=%zu, perplexity %0.1f ->"
              " %0.1f over 5 EM iterations\n",
              ccfg.vocab, ccfg.topics, ccfg.docs, trace.front(),
              trace.back());

  // Per-word E-step work: K topics x inner iterations x ~8 flops. The
  // production configuration runs ~5 inner iterations (online VB), not the
  // 20 used above for convergence testing.
  const double production_inner_iters = 5.0;
  const double flops_per_word =
      8.0 * double(lcfg.topics) * production_inner_iters;

  // Wikipedia-class configuration on 32 nodes (Sec. 4.4: 390 languages,
  // 54M unique words; topic state is the shuffled payload).
  const double wiki_topics = 200.0;
  const double wiki_vocab = 54.0e6;
  const double words_per_node = 6.0e9 / 32.0;
  analytics::LdaIterationProfile prof;
  prof.compute_flops_per_node =
      words_per_node * flops_per_word * (wiki_topics / double(lcfg.topics));
  // K x V stats partitioned across nodes; each pair exchanges its slice.
  prof.shuffle_bytes_per_pair =
      wiki_topics * wiki_vocab * 8.0 / (32.0 * 32.0);
  prof.aggregate_bytes_per_node = wiki_topics * wiki_vocab * 8.0 / 32.0 / 16.0;

  const auto node = hsim::machines::power9();
  const auto net = hsim::clusters::sierra(32);
  const auto def = analytics::cost_iteration(
      prof, analytics::default_stack(), node, net, 32);
  const auto opt = analytics::cost_iteration(
      prof, analytics::optimized_stack(), node, net, 32);

  core::Table t({"Phase", "default (s)", "optimized (s)", "gain"});
  auto row = [&](const char* name, double d, double o) {
    t.row({name, core::Table::num(d, 2), core::Table::num(o, 2),
           core::Table::num(d / (o > 0 ? o : 1e-9), 2) + "x"});
  };
  row("compute (E-step)", def.compute, opt.compute);
  row("JVM (GC + locks)", def.jvm, opt.jvm);
  row("ser/deser", def.serde, opt.serde);
  row("shuffle (all-to-all)", def.shuffle, opt.shuffle);
  row("aggregate (all-to-one)", def.aggregate, opt.aggregate);
  row("TOTAL", def.total(), opt.total());
  t.print();
  std::printf("\nPaper claim: \"a significant performance improvement of"
              " more than 2X over the default, nonoptimized stack\" -- "
              "model gives %.2fx on 32 nodes.\n",
              def.total() / opt.total());

  bench.add_machine("power9_default_stack", def.total());
  bench.add_machine("power9_optimized_stack", opt.total());
  bench.metrics().set("fig2.gain", def.total() / opt.total());
  bench.metrics().set("fig2.perplexity_final", trace.back());
  return 0;
}
