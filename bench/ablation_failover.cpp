// Failure-recovery ablation (DESIGN.md §17): what surviving a rank kill
// costs, and what the alternative strategies trade, on the phoenix
// survivable wave driver.
//
//  1. MTBF sweep, abort-restart vs shrink vs spare: one seeded MTBF-driven
//     kill schedule (resil::make_rank_fault_hook, edge-triggered so an
//     adopting spare is not instantly re-killed) is replayed against three
//     recovery strategies on an 8-rank wave. "Abort-restart" is the
//     checkpoint-free limit of the same machinery: with no committed
//     generation, every fault rolls the world back to step 0 and replays
//     the whole run. Every leg must end bitwise identical to the
//     fault-free field; the currency is the repriced timeline plus the
//     replayed-work and repair ledgers.
//  2. Buddy-traffic pin: in a fault-free run every rank ships exactly one
//     aggregated replication message per committed generation, so
//     buddy_msgs must equal commits x ranks exactly — the two-phase
//     commit never produces partial rounds.
//  3. 64-rank acceptance leg (the ISSUE 10 gate): the distributed wave at
//     64 ranks rides through a seeded mid-run kill of rank 37 under both
//     repair policies and must reproduce the fault-free field bitwise.
//     The spare leg logs everything: recovery traffic (epoch-salted tags)
//     must appear in the net::replay timeline and on the distributed
//     critical path, and the "phoenix/repair" span must show up in the
//     per-rank traces the xray merge consumes.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "net/net.hpp"
#include "phoenix/phoenix.hpp"
#include "resil/fault.hpp"
#include "stencil/survivable.hpp"
#include "xray/xray.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

double u0(double x, double y, double z) {
  return std::sin(M_PI * x) * std::sin(2.0 * M_PI * y) * std::sin(M_PI * z);
}

/// resil's MTBF hook is level-triggered (fires on every op past the
/// budget), which would instantly re-kill a spare that adopts the victim's
/// logical id and continues its op count. Survivable runs need each rank
/// to die at most once.
std::function<bool(int, std::size_t)> edge_triggered(
    std::function<bool(int, std::size_t)> hook, int ranks) {
  auto fired = std::make_shared<std::vector<std::atomic<bool>>>(
      static_cast<std::size_t>(ranks));
  return [hook = std::move(hook), fired](int rank, std::size_t ops) {
    std::atomic<bool>& f = (*fired)[static_cast<std::size_t>(rank)];
    if (f.load(std::memory_order_relaxed) || !hook(rank, ops)) return false;
    f.store(true, std::memory_order_relaxed);
    return true;
  };
}

constexpr int kSweepWorkers = 8;
constexpr int kSweepSteps = 12;   // driver runs 13 (step 0 is the backstep)
constexpr int kSweepCkpt = 3;     // commits at steps 3, 6, 9, 12
// Budget draws beyond this never fire. 26 is below every rank's op count
// in every leg (an edge rank in the checkpoint-free leg performs 27), so
// the victim set is identical across the three strategies.
constexpr double kMaxOps = 26.0;
// Seed 275's schedule spans the interesting regimes: no kills at MTBF
// 600, one post-commit kill (rank 3, op 18) at 200, and at 80 one
// pre-first-commit kill (rank 3, op 8: nothing committed yet, so recovery
// degenerates to restart-from-scratch under every strategy) plus one
// post-commit kill (rank 5, op 19). The victims are ring-non-adjacent, so
// a buddy copy of every part survives.
constexpr std::uint64_t kSeed = 275;

stencil::SurvivableWaveConfig sweep_cfg(phoenix::RepairPolicy policy,
                                        int spares, int ckpt_every) {
  stencil::SurvivableWaveConfig cfg;
  cfg.nx = 64;
  cfg.ny = 8;
  cfg.nz = 8;
  cfg.steps = kSweepSteps;
  cfg.workers = kSweepWorkers;
  cfg.spares = spares;
  cfg.policy = policy;
  cfg.ckpt_every = ckpt_every;
  cfg.mpi.timeout_seconds = 10.0;
  cfg.mpi.max_retries = 1;
  return cfg;
}

}  // namespace

COE_BENCH_MAIN(ablation_failover) {
  std::printf("=== Failure recovery: abort-restart vs shrink vs spare"
              " substitution ===\n\n");

  const auto wire8 = hsim::clusters::ethernet(kSweepWorkers);

  // --- Fault-free reference + buddy-traffic formula pin ------------------
  net::NetLog ref_log;
  auto ref_cfg = sweep_cfg(phoenix::RepairPolicy::Shrink, 0, kSweepCkpt);
  ref_cfg.cluster = &wire8;
  ref_cfg.log = &ref_log;
  const auto ref = stencil::survivable_wave_run(ref_cfg, u0);

  const std::size_t commits =
      static_cast<std::size_t>(kSweepSteps / kSweepCkpt);
  const std::size_t expected_buddy =
      commits * static_cast<std::size_t>(kSweepWorkers);
  const bool buddy_pinned = ref.report.stats.buddy_msgs == expected_buddy;
  std::printf("fault-free %d-rank wave: %zu commits x %d ranks -> %zu buddy"
              " messages (measured %zu) %s\n\n",
              kSweepWorkers, commits, kSweepWorkers, expected_buddy,
              ref.report.stats.buddy_msgs, buddy_pinned ? "ok" : "MISMATCH");
  bench.metrics().set("failover.buddy.expected", double(expected_buddy));
  bench.metrics().set("failover.buddy.measured",
                      double(ref.report.stats.buddy_msgs));

  // --- MTBF sweep --------------------------------------------------------
  // One seeded kill schedule per MTBF; the same faults hit all three
  // strategies (kMaxOps keeps the victim set schedule-independent).
  core::Table ts({"MTBF ops", "strategy", "kills", "replayed", "lost ms",
                  "repair ms", "buddy msgs", "timeline ms", "bitwise"});
  ts.row({"inf", "(fault-free)", "0", "0", "0", "0",
          std::to_string(ref.report.stats.buddy_msgs),
          core::Table::num(ref.modeled.timeline_s * 1e3, 3), "yes"});

  struct Leg {
    const char* name;
    phoenix::RepairPolicy policy;
    int spares;
    int ckpt_every;
  };
  // "abort-restart": no generation ever commits, so recovery replays the
  // run from step 0 on a fresh full-size world — classic global restart,
  // priced through the same machinery.
  const Leg legs[] = {
      {"abort-restart", phoenix::RepairPolicy::Spare, 4, 1000000},
      {"shrink", phoenix::RepairPolicy::Shrink, 0, kSweepCkpt},
      {"spare", phoenix::RepairPolicy::Spare, 4, kSweepCkpt},
  };

  bool sweep_bitwise = true;
  bool kills_agree = true;
  for (const double mean_ops : {600.0, 200.0, 80.0}) {
    std::size_t kills_seen = 0;
    bool first_leg = true;
    for (const Leg& leg : legs) {
      net::NetLog log;
      auto cfg = sweep_cfg(leg.policy, leg.spares, leg.ckpt_every);
      cfg.cluster = &wire8;
      cfg.log = &log;
      cfg.fault_hook = edge_triggered(
          resil::make_rank_fault_hook(kSweepWorkers, mean_ops, kSeed,
                                      kMaxOps),
          kSweepWorkers);
      const auto res = stencil::survivable_wave_run(cfg, u0);
      const auto& st = res.report.stats;
      const bool bitwise = res.field == ref.field;
      sweep_bitwise = sweep_bitwise && bitwise;
      if (first_leg) {
        kills_seen = st.kills;
        first_leg = false;
      } else {
        kills_agree = kills_agree && st.kills == kills_seen;
      }
      ts.row({core::Table::num(mean_ops, 0), leg.name,
              std::to_string(st.kills), std::to_string(st.replayed_steps),
              core::Table::num(st.lost_work_s * 1e3, 3),
              core::Table::num(st.repair_s * 1e3, 3),
              std::to_string(st.buddy_msgs),
              core::Table::num(res.modeled.timeline_s * 1e3, 3),
              bitwise ? "yes" : "NO"});
      const std::string pre = "failover.mtbf" +
                              std::to_string(int(mean_ops)) + "." +
                              leg.name + ".";
      bench.metrics().set(pre + "kills", double(st.kills));
      bench.metrics().set(pre + "replayed_steps", double(st.replayed_steps));
      bench.metrics().set(pre + "lost_work_s", st.lost_work_s);
      bench.metrics().set(pre + "timeline_s", res.modeled.timeline_s);
    }
  }
  ts.print();
  std::printf("\nevery leg replays to the fault-free bits: %s; the same"
              " seeded schedule kills the same ranks under every strategy:"
              " %s.\nabort-restart pays full-run replay per fault and"
              " saves the buddy traffic; the checkpointed strategies pay"
              " %zu replication messages to bound rollback at %d steps.\n\n",
              sweep_bitwise ? "yes" : "NO", kills_agree ? "yes" : "NO",
              expected_buddy, kSweepCkpt);

  // --- 64-rank acceptance leg -------------------------------------------
  const int ranks = 64;
  const auto wire64 = hsim::clusters::ethernet(ranks);
  stencil::SurvivableWaveConfig cfg64;
  cfg64.nx = 512;
  cfg64.ny = 16;
  cfg64.nz = 16;
  cfg64.steps = 8;  // driver runs 9; commits at steps 3 and 6
  cfg64.workers = ranks;
  cfg64.ckpt_every = 3;
  cfg64.mpi.timeout_seconds = 10.0;
  cfg64.mpi.max_retries = 1;

  std::printf("=== Survivable wave, %d ranks, %zux%zux%zu, %d steps on"
              " %s ===\n\n",
              ranks, cfg64.nx, cfg64.ny, cfg64.nz, cfg64.steps,
              wire64.name.c_str());

  net::NetLog log_ff;
  auto cfg_ff = cfg64;
  cfg_ff.cluster = &wire64;
  cfg_ff.log = &log_ff;
  const auto ref64 = stencil::survivable_wave_run(cfg_ff, u0);
  const std::size_t expected_buddy64 = 2u * static_cast<std::size_t>(ranks);
  const bool buddy64_pinned =
      ref64.report.stats.buddy_msgs == expected_buddy64;

  // Rank 37 dies at its 20th op: the first halo send of step 4, after the
  // generation at step 3 committed — a mid-run kill in steady state.
  core::Table t64({"leg", "kills", "messages", "timeline ms", "repair ms",
                   "bitwise"});
  t64.row({"fault-free", "0", std::to_string(ref64.modeled.messages),
           core::Table::num(ref64.modeled.timeline_s * 1e3, 3), "0", "yes"});

  net::NetLog log_sp;
  auto cfg_sp = cfg64;
  cfg_sp.spares = 1;
  cfg_sp.policy = phoenix::RepairPolicy::Spare;
  cfg_sp.cluster = &wire64;
  cfg_sp.log = &log_sp;
  cfg_sp.metrics = &bench.metrics();
  cfg_sp.trace_ranks = true;
  cfg_sp.fault_hook = phoenix::kill_rank_at(37, 20);
  const auto spare64 = stencil::survivable_wave_run(cfg_sp, u0);
  const bool spare_bitwise = spare64.field == ref64.field;
  t64.row({"spare", std::to_string(spare64.report.stats.kills),
           std::to_string(spare64.modeled.messages),
           core::Table::num(spare64.modeled.timeline_s * 1e3, 3),
           core::Table::num(spare64.report.stats.repair_s * 1e3, 3),
           spare_bitwise ? "yes" : "NO"});

  net::NetLog log_sh;
  auto cfg_sh = cfg64;
  cfg_sh.policy = phoenix::RepairPolicy::Shrink;
  cfg_sh.cluster = &wire64;
  cfg_sh.log = &log_sh;
  cfg_sh.fault_hook = phoenix::kill_rank_at(37, 20);
  const auto shrink64 = stencil::survivable_wave_run(cfg_sh, u0);
  const bool shrink_bitwise = shrink64.field == ref64.field;
  t64.row({"shrink", std::to_string(shrink64.report.stats.kills),
           std::to_string(shrink64.modeled.messages),
           core::Table::num(shrink64.modeled.timeline_s * 1e3, 3),
           core::Table::num(shrink64.report.stats.repair_s * 1e3, 3),
           shrink_bitwise ? "yes" : "NO"});
  t64.print();

  // Recovery traffic (buddy re-replication, bootstrap ships, drains) adds
  // real messages to the replay timeline under both policies.
  const bool traffic_visible =
      spare64.modeled.messages > ref64.modeled.messages &&
      shrink64.modeled.messages > ref64.modeled.messages;

  // The merged cluster view of the spare leg: well-formed replay, tiled
  // distributed critical path, and the recovery epoch on that path
  // (post-repair traffic carries epoch-salted tags >= 0x10000).
  xray::MergeInputs in;
  in.log = &log_sp;
  in.cluster = &wire64;
  in.ranks = ranks;
  in.rank_traces = &spare64.report.rank_traces;
  const auto rep = xray::analyze(in);
  bool salted_on_path = false;
  for (const auto& step : rep.critical_path) {
    if (rep.replay.events[step.event].ev.tag >= 0x10000) {
      salted_on_path = true;
      break;
    }
  }
  bool repair_span = false;
  for (const auto& tb : spare64.report.rank_traces) {
    for (const auto& e : tb.snapshot()) {
      if (e.phase == "phoenix/repair") repair_span = true;
    }
  }
  const double tol = 1e-9 * std::max(1.0, rep.makespan_s);
  const bool path_tiles =
      rep.well_formed && std::abs(rep.critical_s - rep.makespan_s) <= tol;

  std::printf("\nspare-leg xray: replay %s, critical path %s the makespan"
              " (|%.3g s|), recovery epoch %s the critical path,"
              " phoenix/repair span %s in the rank traces\n",
              rep.well_formed ? "well-formed" : "NOT WELL-FORMED",
              path_tiles ? "tiles" : "DOES NOT tile",
              rep.critical_s - rep.makespan_s,
              salted_on_path ? "on" : "MISSING from",
              repair_span ? "present" : "MISSING");
  std::printf("64-rank verdict: both policies bitwise %s, recovery traffic"
              " %s in the replay (%zu/%zu msgs vs %zu fault-free), buddy"
              " pin %s (%zu == 2x%d)\n",
              spare_bitwise && shrink_bitwise ? "identical" : "DIFFER",
              traffic_visible ? "visible" : "NOT VISIBLE",
              spare64.modeled.messages, shrink64.modeled.messages,
              ref64.modeled.messages, buddy64_pinned ? "holds" : "FAILS",
              ref64.report.stats.buddy_msgs, ranks);

  bench.metrics().set("failover.w64.ref.timeline_s",
                      ref64.modeled.timeline_s);
  bench.metrics().set("failover.w64.spare.timeline_s",
                      spare64.modeled.timeline_s);
  bench.metrics().set("failover.w64.shrink.timeline_s",
                      shrink64.modeled.timeline_s);
  bench.metrics().set("failover.w64.ref.messages",
                      double(ref64.modeled.messages));
  bench.metrics().set("failover.w64.spare.messages",
                      double(spare64.modeled.messages));
  bench.metrics().set("failover.w64.shrink.messages",
                      double(shrink64.modeled.messages));
  bench.metrics().set("failover.w64.bitwise",
                      spare_bitwise && shrink_bitwise ? 1.0 : 0.0);
  xray::publish(rep, bench.metrics());
  bench.add_machine("wave64_faultfree_timeline", ref64.modeled.timeline_s);
  bench.add_machine("wave64_spare_recovery_timeline",
                    spare64.modeled.timeline_s);
  bench.add_machine("wave64_shrink_recovery_timeline",
                    shrink64.modeled.timeline_s);
  if (bench.json_enabled() &&
      !xray::write_artifacts(bench.out_dir(), "ablation_failover", rep,
                             &spare64.report.rank_traces)) {
    std::fprintf(stderr,
                 "ablation_failover: failed to write XRAY artifacts\n");
  }

  const bool ok = buddy_pinned && sweep_bitwise && kills_agree &&
                  buddy64_pinned && spare_bitwise && shrink_bitwise &&
                  traffic_visible && rep.well_formed && path_tiles &&
                  salted_on_path && repair_span &&
                  spare64.report.stats.kills == 1 &&
                  shrink64.report.stats.kills == 1;
  return ok ? 0 : 1;
}
