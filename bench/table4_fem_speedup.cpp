// Table 4 reproduction: "GPU speedup using MFEM, HYPRE, and SUNDIALS" on
// the nonlinear transient diffusion problem, for orders p = 2, 4, 8 and
// four problem sizes. The coupled solver (mini-MFEM partial assembly +
// BoomerAMG-on-LOR + BDF) runs for real; the speedup is the ratio of the
// modeled single-P9-thread time to the modeled V100 time over the
// identical kernel/transfer stream (see DESIGN.md section 2).
#include <cmath>
#include <cstdio>

#include "core/table.hpp"
#include "fem/fem.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

double speedup_for(std::size_t target_unknowns, std::size_t order,
                   std::size_t* actual_unknowns) {
  // Pick nx so (nx*p + 1)^2 ~ target unknowns.
  const double side = std::sqrt(static_cast<double>(target_unknowns));
  auto nx = static_cast<std::size_t>(
      std::max(2.0, std::round((side - 1.0) / static_cast<double>(order))));
  fem::DiffusionConfig cfg;
  cfg.nx = nx;
  cfg.order = order;
  cfg.t_final = 1e-4;
  cfg.dt_init = 1e-4;
  cfg.rtol = 1e-3;
  cfg.max_timesteps = 1;  // one implicit step exercises setup + solve

  // The paper's solve phase "currently requires the use of Unified
  // Memory": derate the V100's effective bandwidth accordingly.
  auto v100_um = hsim::machines::v100();
  v100_um.name = "V100 (UM-managed)";
  v100_um.bw_efficiency = 0.55;
  auto gpu = core::make_device(v100_um);
  const std::size_t cpu_shadow =
      gpu.add_shadow(hsim::machines::power9_thread());
  fem::NonlinearDiffusion app(gpu, cfg);
  auto rep = app.run();
  *actual_unknowns = rep.dofs;
  // Per-kernel roofline on both machines over the identical kernel stream.
  return gpu.shadow_time(cpu_shadow) / gpu.simulated_time();
}

}  // namespace

COE_BENCH_MAIN(table4_fem_speedup) {
  std::printf("=== Table 4: GPU speedup, MFEM + hypre + SUNDIALS ===\n");
  std::printf("Baseline is a single CPU thread (as in the paper); the same"
              " real kernel stream is priced on both machines.\n\n");

  const std::size_t sizes[] = {20800, 82600, 329000, 1313000};
  const double paper[4][3] = {{2.88, 2.78, 4.97},
                              {6.67, 8.00, 12.47},
                              {10.59, 13.71, 19.00},
                              {12.32, 14.36, 20.80}};
  const std::size_t orders[] = {2, 4, 8};

  core::Table t({"Unknowns (target)", "p=2 paper", "p=2 model", "p=4 paper",
                 "p=4 model", "p=8 paper", "p=8 model"});
  for (std::size_t si = 0; si < 4; ++si) {
    std::vector<std::string> row{std::to_string(sizes[si])};
    for (std::size_t oi = 0; oi < 3; ++oi) {
      std::size_t actual = 0;
      const double s = speedup_for(sizes[si], orders[oi], &actual);
      row.push_back(core::Table::num(paper[si][oi], 2));
      row.push_back(core::Table::num(s, 2));
    }
    t.row(row);
  }
  t.print();
  std::printf("\nShape checks: speedup grows with problem size (launch"
              " overhead amortizes) and with order (higher arithmetic"
              " intensity favors the GPU).\n");
  return 0;
}
