// Table 2 reproduction: "Historically best graph scale and performance".
// A real BFS runs locally to calibrate bytes/edge; each historical system
// is then pushed through the capacity (max scale) + bandwidth/network
// (GTEPs) model. Paper values are printed alongside for comparison.
#include <cstdio>

#include "core/table.hpp"
#include "graph/bfs.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

COE_BENCH_MAIN(table2_graph) {
  std::printf("=== Table 2: historically best graph scale and GTEPs ===\n");
  std::printf("Substitution: HavoqGT runs on LLNL clusters -> real RMAT BFS"
              " (validated) + machine-era model; see DESIGN.md.\n\n");

  // Calibrate bytes/edge and bytes/vertex from a real validated run.
  core::Rng rng(42);
  const std::size_t scale = 16;
  auto edges = graph::rmat_edges(scale, 16, rng);
  graph::Graph g(std::size_t{1} << scale, edges);
  auto ctx = core::make_seq();
  auto r = graph::bfs(ctx, g, 1, graph::BfsMode::Hybrid);
  const bool valid = graph::validate_bfs(g, 1, r);
  const double bpe = graph::measured_bytes_per_edge(g);
  const double bpv = 24.0;  // parent + frontier flags + offsets
  std::printf("local calibration: scale %zu, %zu vertices, %zu edges, "
              "%zu reached, valid=%s, bytes/edge=%.1f\n\n",
              scale, g.num_vertices(), g.num_directed_edges() / 2,
              r.reached, valid ? "yes" : "NO", bpe);

  struct Row {
    graph::GraphSystem sys;
    int year;
    std::size_t paper_scale;
    double paper_gteps;
  };
  const double gib = double(1ull << 30);
  const double tib = 1024.0 * gib;
  std::vector<Row> rows;
  // Single fat nodes with large flash arrays (HavoqGT's external-memory
  // target), then the clusters.
  rows.push_back({{"Kraken", hsim::machines::cpu_2011(),
                   hsim::clusters::ethernet(1), 1, 512.0 * gib, 5.0 * tib,
                   1.0e9},
                  2011, 34, 0.053});
  rows.push_back({{"Leviathan", hsim::machines::cpu_2011(),
                   hsim::clusters::ethernet(1), 1, 1024.0 * gib, 19.0 * tib,
                   1.0e9},
                  2011, 36, 0.053});
  rows.push_back({{"Hyperion", hsim::machines::cpu_2011(),
                   hsim::clusters::ethernet(64), 64, 24.0 * gib,
                   0.3 * tib, 1.0e9},
                  2011, 36, 0.601});
  rows.push_back({{"Bertha", hsim::machines::cpu_2014(),
                   hsim::clusters::ethernet(1), 1, 2048.0 * gib, 37.0 * tib,
                   1.0e9},
                  2014, 37, 0.054});
  rows.push_back({{"Catalyst", hsim::machines::cpu_2014(),
                   hsim::clusters::ethernet(300), 300, 128.0 * gib,
                   0.8 * tib, 2.0e9},
                  2014, 40, 4.175});
  // Final system: 256 GB DRAM + 1.6 TB NVMe per node ("the value of NVMe").
  rows.push_back({{"Final System", hsim::machines::power9(),
                   hsim::clusters::sierra(2048), 2048, 256.0 * gib,
                   1.6e12, 3.0e9},
                  2018, 42, 67.258});

  core::Table t({"Machine", "Year", "Nodes", "Scale (paper)", "Scale (model)",
                 "GTEPs (paper)", "GTEPs (model)", "bound by"});
  for (const auto& row : rows) {
    auto p = graph::scale_model(row.sys, bpe, bpv);
    t.row({row.sys.name, std::to_string(row.year),
           std::to_string(row.sys.nodes), std::to_string(row.paper_scale),
           std::to_string(p.max_scale), core::Table::num(row.paper_gteps, 3),
           core::Table::num(p.gteps, 3), row.sys.name[0] ? p.bound_by : ""});
  }
  t.print();
  std::printf("\nShape checks: single-node GTEPs ~0.05 across eras (memory"
              " bound), NVMe lifts the final system's feasible scale, and"
              " 2048 fat-tree nodes deliver tens of GTEPs.\n");
  return valid ? 0 : 1;
}
