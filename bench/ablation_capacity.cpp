// Capacity ablation (DESIGN.md section 14): sweep a tiled working set from
// 0.5x to 4x of the device's memory and watch the paper-shaped cliff appear
// at 1.0x. Under capacity the arena admits everything once (admission of
// fresh data is free, like cudaMalloc) and simulated time is bit-identical
// to a run with no arena attached. Past capacity the LRU resident set
// thrashes: every tile touch evicts a victim (dirty victims spill d2h over
// the DMA engine, clean ones drop free) and re-faults the tile h2d, so the
// transfer engines join the critical path and the slowdown tracks the
// oversubscription ratio.
//
// A second table isolates transfer elision: a naive driver that re-uploads
// its whole working set every pass (the pre-port pattern the paper's apps
// started from) against an arena that skips uploads whose device copy is
// still current. Only the host-rewritten quarter of the tiles actually
// moves; the elided fraction is recovered bandwidth.
#include <cstdio>
#include <optional>
#include <string>
#include <utility>

#include "core/table.hpp"
#include "mem/mem.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

constexpr std::size_t kTiles = 16;
constexpr int kPasses = 4;

struct SweepResult {
  double sim_seconds = 0.0;
  mem::DeviceArena::Stats stats;
};

/// Cyclically touches `kTiles` tiles summing to `ws_bytes` on a fresh
/// machine, charging one streaming kernel per tile touch. Every 4th tile is
/// written (dirty on eviction); the rest are read-only (clean drop). With
/// `with_arena` false the same kernels run with no residency model -- the
/// under-capacity baseline the arena run must match bit-for-bit.
SweepResult run_sweep(const hsim::MachineModel& mach, double ws_bytes,
                      bool with_arena, prof::Profiler* profiler = nullptr) {
  auto ctx = core::make_device(mach);
  SweepResult r;
  {
    mem::ArenaConfig cfg;
    cfg.profiler = profiler;
    std::optional<mem::DeviceArena> arena;
    if (with_arena) arena.emplace(ctx, cfg);
    const double tile = ws_bytes / static_cast<double>(kTiles);
    for (int pass = 0; pass < kPasses; ++pass) {
      for (std::size_t t = 0; t < kTiles; ++t) {
        ctx.touch_device("tile." + std::to_string(t), tile,
                         t % 4 == 0 ? core::MemAccess::Write
                                    : core::MemAccess::Read);
        ctx.record_kernel({0.25 * tile, tile});
      }
    }
    ctx.sync();
    r.sim_seconds = ctx.simulated_time();
    if (arena) r.stats = arena->stats();
  }
  return r;
}

struct ElisionResult {
  double sim_seconds = 0.0;
  double h2d_bytes = 0.0;  ///< priced upload + fault traffic
  double elided_bytes = 0.0;
};

/// The naive upload-everything driver: every pass re-uploads all tiles even
/// though the host only rewrote a rotating quarter of them.
ElisionResult run_naive_uploads(const hsim::MachineModel& mach,
                                double ws_bytes, bool elide) {
  auto ctx = core::make_device(mach);
  mem::ArenaConfig cfg;
  cfg.elide_clean_transfers = elide;
  mem::DeviceArena arena(ctx, cfg);
  const double tile = ws_bytes / static_cast<double>(kTiles);
  for (int pass = 0; pass < kPasses; ++pass) {
    for (std::size_t t = 0; t < kTiles; ++t) {
      const std::string name = "tile." + std::to_string(t);
      if (t % 4 == static_cast<std::size_t>(pass % 4)) {
        ctx.touch_host(name, tile, core::MemAccess::Write);
      }
      ctx.upload(name, tile);
      ctx.touch_device(name, tile, core::MemAccess::Read);
      ctx.record_kernel({0.25 * tile, tile});
    }
  }
  ctx.sync();
  ElisionResult r;
  r.sim_seconds = ctx.simulated_time();
  r.h2d_bytes = arena.stats().upload_bytes + arena.stats().fault_bytes;
  r.elided_bytes = arena.stats().elided_bytes;
  return r;
}

}  // namespace

COE_BENCH_MAIN(ablation_capacity) {
  const double ratios[] = {0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0};
  const std::pair<const char*, hsim::MachineModel> machines[] = {
      {"v100", hsim::machines::v100()}, {"p100", hsim::machines::p100()}};

  for (const auto& [mname, mach] : machines) {
    std::printf("=== Working-set sweep on %s (capacity %.0f GiB, %zu tiles,"
                " %d passes, LRU) ===\n\n",
                mname, mach.mem_capacity / (1024.0 * 1024.0 * 1024.0),
                kTiles, kPasses);
    core::Table t({"ws/cap", "sim ms", "no-arena ms", "slowdown",
                   "evictions", "spill GiB", "fault GiB"});
    for (const double ratio : ratios) {
      const double ws = ratio * mach.mem_capacity;
      const bool headline =
          ratio == 2.0 && std::string(mname) == "v100";
      const SweepResult with = run_sweep(
          mach, ws, true, headline ? &bench.profiler() : nullptr);
      const SweepResult without = run_sweep(mach, ws, false);
      const double slowdown = with.sim_seconds / without.sim_seconds;
      t.row({core::Table::num(ratio, 2),
             core::Table::num(with.sim_seconds * 1e3, 3),
             core::Table::num(without.sim_seconds * 1e3, 3),
             core::Table::num(slowdown, 2) + "x",
             std::to_string(with.stats.evictions),
             core::Table::num(with.stats.spill_bytes / (1024.0 * 1024.0 *
                                                        1024.0), 2),
             core::Table::num(with.stats.fault_bytes / (1024.0 * 1024.0 *
                                                        1024.0), 2)});
      const std::string key = std::string("capacity.") + mname + ".r" +
                              core::Table::num(ratio, 2);
      bench.metrics().set(key + ".slowdown", slowdown);
      bench.metrics().set(key + ".evictions",
                          static_cast<double>(with.stats.evictions));
      if (headline) {
        // Re-run the headline point with a publishing arena so the report
        // carries the full mem.* family for the oversubscribed case.
        auto ctx = core::make_device(mach);
        ctx.set_trace(&bench.trace());
        mem::DeviceArena arena(ctx);
        const double tile = ws / static_cast<double>(kTiles);
        for (int pass = 0; pass < kPasses; ++pass) {
          for (std::size_t tt = 0; tt < kTiles; ++tt) {
            ctx.touch_device("tile." + std::to_string(tt), tile,
                             tt % 4 == 0 ? core::MemAccess::Write
                                         : core::MemAccess::Read);
            ctx.record_kernel({0.25 * tile, tile});
          }
        }
        ctx.sync();
        arena.publish(bench.metrics());
        bench.add_context("v100_oversubscribed_2x", ctx);
      }
    }
    t.print();
    std::printf("\n");
  }
  std::printf("under capacity the arena run matches the no-arena run"
              " bit-for-bit (slowdown 1.00x, zero evictions); past 1.0x the"
              " cyclic LRU working set thrashes and eviction traffic joins"
              " the critical path.\n\n");

  std::printf("=== Transfer elision: naive re-upload of all %zu tiles per"
              " pass, host rewrites 1/4 (v100) ===\n\n", kTiles);
  core::Table t2({"ws/cap", "mode", "sim ms", "h2d GiB", "elided GiB"});
  const auto& v100 = machines[0].second;
  double under_saving = 0.0;
  for (const double ratio : {0.75, 2.0}) {
    const double ws = ratio * v100.mem_capacity;
    const ElisionResult off = run_naive_uploads(v100, ws, false);
    const ElisionResult on = run_naive_uploads(v100, ws, true);
    const double gib = 1024.0 * 1024.0 * 1024.0;
    t2.row({core::Table::num(ratio, 2), "elide off",
            core::Table::num(off.sim_seconds * 1e3, 3),
            core::Table::num(off.h2d_bytes / gib, 2), "0.00"});
    t2.row({core::Table::num(ratio, 2), "elide on",
            core::Table::num(on.sim_seconds * 1e3, 3),
            core::Table::num(on.h2d_bytes / gib, 2),
            core::Table::num(on.elided_bytes / gib, 2)});
    const std::string key =
        "capacity.elision.r" + core::Table::num(ratio, 2);
    bench.metrics().set(key + ".h2d_saved_frac",
                        1.0 - on.h2d_bytes / off.h2d_bytes);
    if (ratio < 1.0) under_saving = 1.0 - on.h2d_bytes / off.h2d_bytes;
  }
  t2.print();
  std::printf("\nelision skips uploads whose device copy is still current:"
              " under capacity ~%.0f%% of the naive h2d traffic vanishes"
              " (only the rewritten quarter moves after the first pass);"
              " oversubscribed, eviction invalidates resident copies so"
              " less is recoverable.\n",
              under_saving * 100.0);
  return 0;
}
