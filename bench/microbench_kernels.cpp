// Real wall-clock microbenchmarks (google-benchmark) of the hot kernels
// across the workload: SpMV, AMG V-cycle, FEM partial vs full assembly,
// FFT, transpose variants, MD pair forces, reaction kernels, and the
// ParaDyn loop variants. These are the kernels the modeled experiments
// are built from; their *relative* behaviour is measurable even on one
// core.
#include <benchmark/benchmark.h>

#include "amg/amg.hpp"
#include "beamline/fft.hpp"
#include "bench/bench_main.hpp"
#include "core/exec.hpp"
#include "core/rng.hpp"
#include "dyn/paradyn.hpp"
#include "fem/fem.hpp"
#include "la/la.hpp"
#include "md/md.hpp"
#include "reaction/membrane.hpp"

using namespace coe;

namespace {

void BM_Spmv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = la::poisson2d(n, n);
  std::vector<double> x(a.rows(), 1.0), y(a.rows());
  auto ctx = core::make_seq();
  for (auto _ : state) {
    a.spmv(ctx, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_Spmv)->Arg(64)->Arg(128)->Arg(256);

void BM_AmgVcycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = la::poisson2d(n, n);
  amg::BoomerAmg solver(a, {});
  std::vector<double> b(a.rows(), 1.0), z(a.rows());
  auto ctx = core::make_seq();
  for (auto _ : state) {
    solver.apply(ctx, b, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_AmgVcycle)->Arg(32)->Arg(64);

void BM_FemApply(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const bool partial = state.range(1) != 0;
  // Fixed dof count across orders: nx*p ~ 48.
  fem::TensorMesh2D mesh(48 / p, 48 / p, p);
  fem::EllipticOperator op(mesh,
                           partial ? fem::Assembly::Partial
                                   : fem::Assembly::Full,
                           1.0, 1.0);
  if (!partial) (void)op.assembled_matrix();  // assemble outside the timer
  std::vector<double> x(mesh.num_dofs(), 1.0), y(mesh.num_dofs());
  auto ctx = core::make_seq();
  for (auto _ : state) {
    op.apply(ctx, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FemApply)
    ->Args({2, 1})
    ->Args({2, 0})
    ->Args({4, 1})
    ->Args({4, 0})
    ->Args({8, 1})
    ->Args({8, 0});

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Rng rng(5);
  std::vector<beamline::cplx> a(n);
  for (auto& v : a) v = beamline::cplx(rng.uniform(), rng.uniform());
  auto ctx = core::make_seq();
  for (auto _ : state) {
    beamline::fft(ctx, a, false);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Transpose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto kind = state.range(1) != 0 ? beamline::TransposeKind::Tiled
                                        : beamline::TransposeKind::Naive;
  core::Rng rng(7);
  std::vector<beamline::cplx> in(n * n), out;
  for (auto& v : in) v = beamline::cplx(rng.uniform(), rng.uniform());
  auto ctx = core::make_seq();
  for (auto _ : state) {
    beamline::transpose(ctx, in, out, n, n, kind);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 16));
}
BENCHMARK(BM_Transpose)->Args({512, 0})->Args({512, 1})->Args({1024, 0})
    ->Args({1024, 1});

void BM_MdPairForces(benchmark::State& state) {
  core::Rng rng(11);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, static_cast<std::size_t>(state.range(0)), 0.8,
                   1.0, rng);
  auto ctx = core::make_seq();
  md::NeighborList nl(2.5, 0.3);
  nl.build(ctx, p, box);
  md::LennardJones lj(1.0, 1.0, 2.5);
  for (auto _ : state) {
    p.zero_forces();
    auto res = md::compute_pair_forces(ctx, p, box, nl, lj);
    benchmark::DoNotOptimize(res.energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.num_pairs()));
}
BENCHMARK(BM_MdPairForces)->Arg(6)->Arg(10)->Arg(14);

void BM_ReactionKernel(benchmark::State& state) {
  const auto kind = state.range(0) != 0 ? reaction::RateKind::Rational
                                        : reaction::RateKind::Libm;
  reaction::MembraneKernel kernel(kind);
  std::vector<reaction::CellState> cells(
      static_cast<std::size_t>(state.range(1)));
  auto ctx = core::make_seq();
  for (auto _ : state) {
    kernel.step(ctx, cells, 0.01);
    benchmark::DoNotOptimize(cells.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}
BENCHMARK(BM_ReactionKernel)->Args({0, 10000})->Args({1, 10000});

void BM_ParadynVariant(benchmark::State& state) {
  dyn::ElementArrays a(static_cast<std::size_t>(state.range(1)));
  const auto v = static_cast<dyn::LoopVariant>(state.range(0));
  auto ctx = core::make_seq();
  for (auto _ : state) {
    dyn::run_update(ctx, a, 1, v);
    benchmark::DoNotOptimize(a.v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}
BENCHMARK(BM_ParadynVariant)
    ->Args({0, 1 << 18})
    ->Args({1, 1 << 18})
    ->Args({2, 1 << 18});

void BM_ForallTracing(benchmark::State& state) {
  // Tracing-overhead check (DESIGN.md section 10.1): the same forall with
  // no trace buffer attached (Arg 0) vs a ring-buffer sink (Arg 1). With
  // tracing off the only per-launch cost is one branch.
  const bool traced = state.range(0) != 0;
  obs::TraceBuffer buf(1 << 12);
  auto ctx = core::make_seq();
  if (traced) ctx.set_trace(&buf);
  std::vector<double> v(1 << 14, 1.0);
  const hsim::Workload w{1.0, 16.0};
  for (auto _ : state) {
    ctx.forall(v.size(), w,
               [&](std::size_t i) { v[i] = v[i] * 1.0000001 + 1e-9; });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(v.size()));
}
BENCHMARK(BM_ForallTracing)->Arg(0)->Arg(1);

}  // namespace

COE_BENCH_MAIN(microbench_kernels) {
  // Leftover argv (e.g. --benchmark_filter=...) goes straight through to
  // google-benchmark; the reporter mirrors each benchmark's per-iteration
  // real time into the metrics registry so BENCH_microbench_kernels.json
  // carries the headline numbers.
  class Reporter : public benchmark::ConsoleReporter {
   public:
    explicit Reporter(obs::MetricsRegistry& m) : metrics_(m) {}
    void ReportRuns(const std::vector<Run>& reports) override {
      for (const auto& run : reports) {
        if (run.error_occurred || run.iterations == 0) continue;
        metrics_.set("microbench." + run.benchmark_name() + ".real_s",
                     run.real_accumulated_time /
                         static_cast<double>(run.iterations));
      }
      ConsoleReporter::ReportRuns(reports);
    }

   private:
    obs::MetricsRegistry& metrics_;
  };

  int argc = bench.argc();
  benchmark::Initialize(&argc, bench.argv());
  Reporter reporter(bench.metrics());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
