// Real wall-clock microbenchmarks (google-benchmark) of the hot kernels
// across the workload: SpMV, AMG V-cycle, FEM partial vs full assembly,
// FFT, transpose variants, MD pair forces, reaction kernels, and the
// ParaDyn loop variants. These are the kernels the modeled experiments
// are built from; their *relative* behaviour is measurable even on one
// core.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "amg/amg.hpp"
#include "beamline/fft.hpp"
#include "bench/bench_main.hpp"
#include "core/exec.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "dyn/paradyn.hpp"
#include "fem/fem.hpp"
#include "la/la.hpp"
#include "md/md.hpp"
#include "reaction/membrane.hpp"
#include "reaction/monodomain.hpp"

using namespace coe;

namespace {

void BM_Spmv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = la::poisson2d(n, n);
  std::vector<double> x(a.rows(), 1.0), y(a.rows());
  auto ctx = core::make_seq();
  for (auto _ : state) {
    a.spmv(ctx, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_Spmv)->Arg(64)->Arg(128)->Arg(256);

void BM_AmgVcycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = la::poisson2d(n, n);
  amg::BoomerAmg solver(a, {});
  std::vector<double> b(a.rows(), 1.0), z(a.rows());
  auto ctx = core::make_seq();
  for (auto _ : state) {
    solver.apply(ctx, b, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_AmgVcycle)->Arg(32)->Arg(64);

void BM_FemApply(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const bool partial = state.range(1) != 0;
  // Fixed dof count across orders: nx*p ~ 48.
  fem::TensorMesh2D mesh(48 / p, 48 / p, p);
  fem::EllipticOperator op(mesh,
                           partial ? fem::Assembly::Partial
                                   : fem::Assembly::Full,
                           1.0, 1.0);
  if (!partial) (void)op.assembled_matrix();  // assemble outside the timer
  std::vector<double> x(mesh.num_dofs(), 1.0), y(mesh.num_dofs());
  auto ctx = core::make_seq();
  for (auto _ : state) {
    op.apply(ctx, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FemApply)
    ->Args({2, 1})
    ->Args({2, 0})
    ->Args({4, 1})
    ->Args({4, 0})
    ->Args({8, 1})
    ->Args({8, 0});

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Rng rng(5);
  std::vector<beamline::cplx> a(n);
  for (auto& v : a) v = beamline::cplx(rng.uniform(), rng.uniform());
  auto ctx = core::make_seq();
  for (auto _ : state) {
    beamline::fft(ctx, a, false);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Transpose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto kind = state.range(1) != 0 ? beamline::TransposeKind::Tiled
                                        : beamline::TransposeKind::Naive;
  core::Rng rng(7);
  std::vector<beamline::cplx> in(n * n), out;
  for (auto& v : in) v = beamline::cplx(rng.uniform(), rng.uniform());
  auto ctx = core::make_seq();
  for (auto _ : state) {
    beamline::transpose(ctx, in, out, n, n, kind);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * 16));
}
BENCHMARK(BM_Transpose)->Args({512, 0})->Args({512, 1})->Args({1024, 0})
    ->Args({1024, 1});

void BM_MdPairForces(benchmark::State& state) {
  core::Rng rng(11);
  md::Particles p;
  md::Box box;
  md::init_lattice(p, box, static_cast<std::size_t>(state.range(0)), 0.8,
                   1.0, rng);
  auto ctx = core::make_seq();
  md::NeighborList nl(2.5, 0.3);
  nl.build(ctx, p, box);
  md::LennardJones lj(1.0, 1.0, 2.5);
  for (auto _ : state) {
    p.zero_forces();
    auto res = md::compute_pair_forces(ctx, p, box, nl, lj);
    benchmark::DoNotOptimize(res.energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.num_pairs()));
}
BENCHMARK(BM_MdPairForces)->Arg(6)->Arg(10)->Arg(14);

void BM_ReactionKernel(benchmark::State& state) {
  const auto kind = state.range(0) != 0 ? reaction::RateKind::Rational
                                        : reaction::RateKind::Libm;
  reaction::MembraneKernel kernel(kind);
  std::vector<reaction::CellState> cells(
      static_cast<std::size_t>(state.range(1)));
  auto ctx = core::make_seq();
  for (auto _ : state) {
    kernel.step(ctx, cells, 0.01);
    benchmark::DoNotOptimize(cells.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}
BENCHMARK(BM_ReactionKernel)->Args({0, 10000})->Args({1, 10000});

void BM_ParadynVariant(benchmark::State& state) {
  dyn::ElementArrays a(static_cast<std::size_t>(state.range(1)));
  const auto v = static_cast<dyn::LoopVariant>(state.range(0));
  auto ctx = core::make_seq();
  for (auto _ : state) {
    dyn::run_update(ctx, a, 1, v);
    benchmark::DoNotOptimize(a.v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}
BENCHMARK(BM_ParadynVariant)
    ->Args({0, 1 << 18})
    ->Args({1, 1 << 18})
    ->Args({2, 1 << 18});

void BM_ForallTracing(benchmark::State& state) {
  // Tracing-overhead check (DESIGN.md section 10.1): the same forall with
  // no trace buffer attached (Arg 0) vs a ring-buffer sink (Arg 1). With
  // tracing off the only per-launch cost is one branch.
  const bool traced = state.range(0) != 0;
  obs::TraceBuffer buf(1 << 12);
  auto ctx = core::make_seq();
  if (traced) ctx.set_trace(&buf);
  std::vector<double> v(1 << 14, 1.0);
  const hsim::Workload w{1.0, 16.0};
  for (auto _ : state) {
    ctx.forall(v.size(), w,
               [&](std::size_t i) { v[i] = v[i] * 1.0000001 + 1e-9; });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(v.size()));
}
BENCHMARK(BM_ForallTracing)->Arg(0)->Arg(1);

void BM_Forall3(benchmark::State& state) {
  // Host cost of the 3D index recovery: forall3 hoists the div/mod out of
  // the inner loop (increment-with-carry), so the per-iteration work is
  // the body plus two adds and a compare.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> v(n * n * n, 1.0);
  auto ctx = core::make_seq();
  for (auto _ : state) {
    ctx.forall3(n, n, n, {1.0, 16.0},
                [&](std::size_t i, std::size_t j, std::size_t k) {
                  v[(i * n + j) * n + k] += 1.0;
                });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(v.size()));
}
BENCHMARK(BM_Forall3)->Arg(32)->Arg(64)->Arg(96);

void BM_CgFused(benchmark::State& state) {
  // Real-host cost of the fused CG iteration (Arg 1) vs the five separate
  // BLAS-1 sweeps (Arg 0); the answer is bitwise identical either way.
  const auto n = static_cast<std::size_t>(state.range(1));
  auto a = la::poisson2d(n, n);
  la::CsrOperator op(a);
  la::JacobiPreconditioner jacobi(a);
  std::vector<double> b(a.rows(), 1.0), x(a.rows());
  auto ctx = core::make_seq();
  la::SolveOptions opts;
  opts.fused = state.range(0) != 0;
  opts.max_iters = 50;
  opts.rel_tol = 0.0;  // fixed iteration count for a stable comparison
  for (auto _ : state) {
    std::fill(x.begin(), x.end(), 0.0);
    auto res = la::cg(ctx, op, jacobi, b, x, opts);
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_CgFused)->Args({0, 128})->Args({1, 128});

}  // namespace

namespace {

/// Simulated-cost half of the fusion ablation: launch counts and modeled
/// time on a V100 for the fused vs unfused CG iteration and Cardioid
/// reaction step. Fusion must strictly reduce both, with the solution
/// unchanged; the table goes to stdout and the metrics to the JSON.
void fusion_ablation(coe::bench::Harness& bench) {
  std::printf("\n=== fusion ablation (simulated V100) ===\n\n");
  core::Table t({"hot path", "launches", "sim ms", "fused gain"});

  double cg_launches[2], cg_ms[2], cg_xnorm[2];
  for (int fused = 0; fused < 2; ++fused) {
    auto ctx = core::make_device(hsim::machines::v100());
    auto a = la::poisson2d(96, 96);
    la::CsrOperator op(a);
    la::JacobiPreconditioner jacobi(a);
    std::vector<double> b(a.rows(), 1.0), x(a.rows());
    la::SolveOptions opts;
    opts.fused = fused != 0;
    opts.max_iters = 100;
    opts.rel_tol = 0.0;
    la::cg(ctx, op, jacobi, b, x, opts);
    cg_launches[fused] = static_cast<double>(ctx.counters().launches);
    cg_ms[fused] = ctx.simulated_time() * 1e3;
    cg_xnorm[fused] = la::norm2(ctx, x);
  }
  t.row({"CG iteration (unfused)", core::Table::num(cg_launches[0], 0),
         core::Table::num(cg_ms[0], 3), "1.00x"});
  t.row({"CG iteration (fused)", core::Table::num(cg_launches[1], 0),
         core::Table::num(cg_ms[1], 3),
         core::Table::num(cg_ms[0] / cg_ms[1], 2) + "x"});

  double rx_launches[2], rx_ms[2], rx_v[2];
  for (int fused = 0; fused < 2; ++fused) {
    auto dev = core::make_device(hsim::machines::v100());
    auto host = core::make_seq();
    reaction::TissueConfig cfg;
    cfg.nx = 128;
    cfg.ny = 128;
    cfg.rates = reaction::RateKind::Rational;
    cfg.fuse_reaction = fused != 0;
    reaction::Monodomain tissue(dev, host, cfg);
    tissue.stimulate(0, 16, 0, 16, 100.0, 1.0);
    tissue.run(5.0);
    rx_launches[fused] = static_cast<double>(dev.counters().launches);
    rx_ms[fused] = dev.simulated_time() * 1e3;
    rx_v[fused] = tissue.max_voltage();
  }
  t.row({"Cardioid step (unfused)", core::Table::num(rx_launches[0], 0),
         core::Table::num(rx_ms[0], 3), "1.00x"});
  t.row({"Cardioid step (fused)", core::Table::num(rx_launches[1], 0),
         core::Table::num(rx_ms[1], 3),
         core::Table::num(rx_ms[0] / rx_ms[1], 2) + "x"});
  t.print();
  std::printf("\nCG solutions identical: %s; tissue voltages identical:"
              " %s\n",
              cg_xnorm[0] == cg_xnorm[1] ? "yes" : "NO",
              rx_v[0] == rx_v[1] ? "yes" : "NO");

  bench.metrics().set("fusion.cg.unfused_launches", cg_launches[0]);
  bench.metrics().set("fusion.cg.fused_launches", cg_launches[1]);
  bench.metrics().set("fusion.cg.speedup", cg_ms[0] / cg_ms[1]);
  bench.metrics().set("fusion.reaction.unfused_launches", rx_launches[0]);
  bench.metrics().set("fusion.reaction.fused_launches", rx_launches[1]);
  bench.metrics().set("fusion.reaction.speedup", rx_ms[0] / rx_ms[1]);
}

}  // namespace

COE_BENCH_MAIN(microbench_kernels) {
  // Leftover argv (e.g. --benchmark_filter=...) goes straight through to
  // google-benchmark; the reporter mirrors each benchmark's per-iteration
  // real time into the metrics registry so BENCH_microbench_kernels.json
  // carries the headline numbers.
  class Reporter : public benchmark::ConsoleReporter {
   public:
    explicit Reporter(obs::MetricsRegistry& m) : metrics_(m) {}
    void ReportRuns(const std::vector<Run>& reports) override {
      for (const auto& run : reports) {
        if (run.error_occurred || run.iterations == 0) continue;
        metrics_.set("microbench." + run.benchmark_name() + ".real_s",
                     run.real_accumulated_time /
                         static_cast<double>(run.iterations));
      }
      ConsoleReporter::ReportRuns(reports);
    }

   private:
    obs::MetricsRegistry& metrics_;
  };

  int argc = bench.argc();
  benchmark::Initialize(&argc, bench.argv());
  Reporter reporter(bench.metrics());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  fusion_ablation(bench);
  return 0;
}
