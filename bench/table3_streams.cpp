// Table 3 reproduction: "Validation accuracies for three stream
// approaches" on UCF101 and HMDB51. Single-stream accuracies come from a
// calibrated synthetic score generator (the datasets/backbones are
// unavailable; DESIGN.md section 2); the combination methods are real.
#include <cstdio>

#include "core/table.hpp"
#include "ml/streams.hpp"

#include "bench/bench_main.hpp"

using namespace coe;

namespace {

struct DatasetSpec {
  const char* name;
  std::size_t classes;
  std::array<double, 3> stream_acc;  // spatial, temporal, SPyNet (paper)
  double paper_avg, paper_weighted, paper_logreg, paper_nn;
};

void run_dataset(const DatasetSpec& spec, prof::Profiler* profiler) {
  // No simulated context here: spans capture real wall time per stage
  // (generate / single-stream eval / combiners) so PROF_table3_streams.json
  // still reports where the bench spends its time.
  prof::Scope dataset_span(profiler, nullptr, spec.name);
  ml::StreamsConfig cfg;
  cfg.classes = spec.classes;
  cfg.train_samples = 6000;
  cfg.test_samples = 4000;
  cfg.target_accuracy = spec.stream_acc;
  cfg.correlation = 0.82;
  cfg.seed = 1000 + spec.classes;
  ml::StreamsDataset ds = [&] {
    prof::Scope s(profiler, nullptr, "generate");
    return ml::generate_streams(cfg);
  }();

  const char* stream_names[3] = {"Spatial Stream", "Temporal Stream",
                                 "SPyNet Stream"};
  const double paper_single[3] = {spec.stream_acc[0] * 100.0,
                                  spec.stream_acc[1] * 100.0,
                                  spec.stream_acc[2] * 100.0};

  std::array<double, 3> val_acc{};
  for (std::size_t s = 0; s < 3; ++s) {
    val_acc[s] = ml::stream_accuracy(ds.train, s);
  }

  core::Table t({"Combination Approach", "paper (%)", "measured (%)"});
  for (std::size_t s = 0; s < 3; ++s) {
    t.row({stream_names[s], core::Table::num(paper_single[s], 2),
           core::Table::num(100.0 * ml::stream_accuracy(ds.test, s), 2)});
  }
  {
    prof::Scope s(profiler, nullptr, "averaging");
    t.row({"Simple Average", core::Table::num(spec.paper_avg, 2),
           core::Table::num(100.0 * ml::combine_simple_average(ds.test), 2)});
    t.row({"Weighted Average", core::Table::num(spec.paper_weighted, 2),
           core::Table::num(
               100.0 * ml::combine_weighted_average(ds.test, val_acc), 2)});
  }
  {
    prof::Scope s(profiler, nullptr, "trained_combiners");
    t.row({"Logistic Regression", core::Table::num(spec.paper_logreg, 2),
           core::Table::num(
               100.0 * ml::combine_logistic_regression(ds.train, ds.test),
               2)});
    t.row({"Shallow NN", core::Table::num(spec.paper_nn, 2),
           core::Table::num(
               100.0 * ml::combine_shallow_nn(ds.train, ds.test), 2)});
  }
  std::printf("--- %s (%zu classes) ---\n", spec.name, spec.classes);
  t.print();
  std::printf("\n");
}

}  // namespace

COE_BENCH_MAIN(table3_streams) {
  std::printf("=== Table 3: validation accuracies, 3-stream ensembles ===\n");
  std::printf("Shape to reproduce: each single stream ~55-88%%; any fusion"
              " gains several points over the best single stream.\n\n");
  run_dataset({"UCF101", 101, {0.8506, 0.8470, 0.8832}, 92.78, 93.47, 92.60,
               93.18},
              &bench.profiler());
  run_dataset({"HMDB51", 51, {0.6144, 0.5634, 0.5869}, 75.16, 77.45, 81.24,
               80.33},
              &bench.profiler());
  return 0;
}
