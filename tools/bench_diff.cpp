// Compares two BENCH_*.json artifacts (or two directories of them) and
// flags regressions. Usage:
//
//   bench_diff [--threshold=0.2] BASELINE CURRENT
//
// BASELINE/CURRENT are either two coe-bench-v1 JSON files or two
// directories; with directories, reports are paired by file name and
// unpaired files are listed but not fatal. For every pair the tool prints
// the wall-time delta, each machine's simulated-time delta, and the delta
// of every numeric metric the two reports share. The exit code is nonzero
// iff some pair's wall time regressed by more than the threshold
// (fractional, default 0.2 = +20%); simulated-time and metric drift is
// informational, since modeled numbers move deliberately when the machine
// models do.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

namespace fs = std::filesystem;
using coe::obs::Json;

bool load(const fs::path& path, Json& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  try {
    out = Json::parse(ss.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(), e.what());
    return false;
  }
  return true;
}

std::string pct(double base, double cur) {
  if (base == 0.0) return cur == 0.0 ? "+0.0%" : "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * (cur - base) / base);
  return buf;
}

/// Flattens metrics.counters/gauges into name -> value (histograms have
/// object values and are skipped).
std::map<std::string, double> numeric_metrics(const Json& report) {
  std::map<std::string, double> out;
  if (!report.contains("metrics")) return out;
  const Json& m = report.at("metrics");
  for (const char* section : {"counters", "gauges"}) {
    if (!m.contains(section) || !m.at(section).is_object()) continue;
    for (const auto& [name, v] : m.at(section).fields()) {
      if (v.is_number()) out[name] = v.as_number();
    }
  }
  return out;
}

/// Diffs one baseline/current report pair; returns true iff wall time
/// stayed within the threshold.
bool diff_pair(const fs::path& base_path, const fs::path& cur_path,
               double threshold) {
  Json base, cur;
  if (!load(base_path, base) || !load(cur_path, cur)) return false;

  const std::string name =
      cur.contains("name") && cur.at("name").is_string()
          ? cur.at("name").as_string()
          : cur_path.filename().string();
  std::printf("== %s ==\n", name.c_str());

  bool ok = true;
  if (base.contains("wall_seconds") && cur.contains("wall_seconds")) {
    const double wb = base.at("wall_seconds").as_number();
    const double wc = cur.at("wall_seconds").as_number();
    const bool regressed = wb > 0.0 && wc > wb * (1.0 + threshold);
    std::printf("  wall      %12.4fs -> %12.4fs  %s%s\n", wb, wc,
                pct(wb, wc).c_str(), regressed ? "  REGRESSION" : "");
    ok = !regressed;
  }

  // Simulated machines, paired by name.
  std::map<std::string, double> base_sim;
  if (base.contains("machines")) {
    for (const Json& m : base.at("machines").items()) {
      base_sim[m.at("name").as_string()] = m.at("sim_seconds").as_number();
    }
  }
  if (cur.contains("machines")) {
    for (const Json& m : cur.at("machines").items()) {
      const std::string& mn = m.at("name").as_string();
      const double sc = m.at("sim_seconds").as_number();
      const auto it = base_sim.find(mn);
      if (it == base_sim.end()) {
        std::printf("  sim  %-20s (new) %12.6fs\n", mn.c_str(), sc);
      } else {
        std::printf("  sim  %-20s %12.6fs -> %12.6fs  %s\n", mn.c_str(),
                    it->second, sc, pct(it->second, sc).c_str());
      }
    }
  }

  const auto bm = numeric_metrics(base);
  const auto cm = numeric_metrics(cur);
  for (const auto& [mn, cv] : cm) {
    const auto it = bm.find(mn);
    if (it == bm.end()) continue;  // new metric: nothing to compare
    if (it->second == cv) continue;  // unchanged: keep the report short
    std::printf("  metric %-40s %14.6g -> %14.6g  %s\n", mn.c_str(),
                it->second, cv, pct(it->second, cv).c_str());
  }
  return ok;
}

/// BENCH_*.json files directly inside `dir`, sorted by name.
std::vector<fs::path> reports_in(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string fn = e.path().filename().string();
    if (e.is_regular_file() && fn.rfind("BENCH_", 0) == 0 &&
        fn.size() > 5 && fn.substr(fn.size() - 5) == ".json") {
      out.push_back(e.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.2;
  std::vector<fs::path> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::atof(argv[i] + 12);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2 || threshold < 0.0) {
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold=FRAC] BASELINE CURRENT\n"
                 "  BASELINE and CURRENT are BENCH_*.json files or"
                 " directories of them.\n");
    return 2;
  }

  bool ok = true;
  if (fs::is_directory(paths[0]) && fs::is_directory(paths[1])) {
    std::map<std::string, fs::path> base_by_name;
    for (const auto& p : reports_in(paths[0])) {
      base_by_name[p.filename().string()] = p;
    }
    std::size_t paired = 0;
    for (const auto& p : reports_in(paths[1])) {
      const auto it = base_by_name.find(p.filename().string());
      if (it == base_by_name.end()) {
        std::printf("-- %s: no baseline, skipped\n",
                    p.filename().c_str());
        continue;
      }
      ok = diff_pair(it->second, p, threshold) && ok;
      base_by_name.erase(it);
      ++paired;
    }
    for (const auto& [fn, p] : base_by_name) {
      std::printf("-- %s: in baseline only\n", fn.c_str());
    }
    if (paired == 0) {
      std::fprintf(stderr, "bench_diff: no report pairs found\n");
      return 2;
    }
  } else {
    ok = diff_pair(paths[0], paths[1], threshold);
  }
  std::printf("%s (threshold %+.0f%%)\n", ok ? "OK" : "FAILED",
              threshold * 100.0);
  return ok ? 0 : 1;
}
