// Offline bottleneck report over bench artifacts (DESIGN.md section 12).
//
//   coe_report [--check-coverage=FRAC] [--json] FILE...
//
// Each FILE is either a TRACE_*.json (Chrome trace written by
// obs::write_chrome_trace), a BENCH_*.json (coe-bench-v1), or an
// XRAY_*.json (coe-xray-v1 merged cluster report). For a bench report the
// referenced trace file is resolved next to it. Traces get the
// prof::analyze critical-path extraction and the text bottleneck report
// (or, with --json, the coe-prof-v1 document); xray reports are rendered
// as the straggler/imbalance summary (with --json, echoed verbatim —
// they already are the document).
//
// --check-coverage=FRAC turns the tool into a CI gate: it exits nonzero
// unless the extracted critical path accounts for at least FRAC of the
// trace window on every input (ISSUE 4 pins CI at 0.995). A dropped-event
// count > 0 also fails the gate, since attribution over a truncated ring
// is not trustworthy. For an xray report the gate instead requires the
// merged view to be well-formed (every send matched, no truncated rank
// logs) with distributed critical-path coverage >= FRAC of the makespan.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "prof/prof.hpp"

namespace {

using coe::obs::Json;

bool read_file(const std::string& path, std::string* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

/// Directory part of `path` including the trailing slash ("" if none) so
/// trace paths referenced by a bench report resolve relative to it.
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

struct Options {
  double min_coverage = -1.0;  ///< <0: report only, no gate
  bool json = false;
};

/// Loads `path` as a trace, directly or via a bench report's trace.path.
/// Returns false (with a message) if no trace can be found.
bool load_trace(const std::string& path, coe::obs::TraceBuffer* buf,
                std::string* title) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "coe_report: cannot read %s\n", path.c_str());
    return false;
  }
  Json root;
  try {
    root = Json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "coe_report: %s: %s\n", path.c_str(), e.what());
    return false;
  }
  if (root.contains("traceEvents")) {
    *buf = coe::obs::parse_chrome_trace(text);
    *title = path;
    return true;
  }
  if (root.contains("schema") &&
      root.at("schema").type() == Json::Type::String &&
      root.at("schema").as_string() == "coe-bench-v1") {
    if (!root.contains("trace") ||
        root.at("trace").type() != Json::Type::Object) {
      std::fprintf(stderr, "coe_report: %s has no trace (run with tracing"
                   " enabled)\n", path.c_str());
      return false;
    }
    std::string tpath = root.at("trace").at("path").as_string();
    std::string ttext;
    // The stamped path is relative to where the bench ran; try it as-is,
    // then next to the bench report.
    if (!read_file(tpath, &ttext) &&
        !read_file(dir_of(path) + tpath, &ttext)) {
      std::fprintf(stderr, "coe_report: trace %s (from %s) not readable\n",
                   tpath.c_str(), path.c_str());
      return false;
    }
    *buf = coe::obs::parse_chrome_trace(ttext);
    *title = root.contains("name") ? root.at("name").as_string() : path;
    return true;
  }
  std::fprintf(stderr, "coe_report: %s is neither a Chrome trace nor a"
               " coe-bench-v1 report\n", path.c_str());
  return false;
}

double num_or(const Json& o, const char* key, double fallback) {
  return o.contains(key) && o.at(key).type() == Json::Type::Number
             ? o.at(key).as_number()
             : fallback;
}

/// Renders a coe-xray-v1 merged cluster report (already analyzed by
/// xray::analyze; this just formats the document) and applies the
/// well-formed + coverage gate.
bool report_xray(const std::string& path, const Json& root,
                 const Options& opt) {
  if (opt.json) {
    std::printf("%s\n", root.dump().c_str());
  } else {
    const std::string name =
        root.contains("name") ? root.at("name").as_string() : path;
    const bool wf = root.contains("well_formed") &&
                    root.at("well_formed").type() == Json::Type::Bool &&
                    root.at("well_formed").as_bool();
    std::printf("%s (merged cluster view)\n", name.c_str());
    std::printf("  ranks: %.0f   messages: %.0f matched, %.0f unmatched"
                "   well-formed: %s\n",
                num_or(root, "ranks", 0), num_or(root, "matched", 0),
                num_or(root, "unmatched_sends", 0), wf ? "yes" : "NO");
    std::printf("  makespan: %.6e s   distributed critical path: %.6e s"
                " (%.2f%% coverage, %.0f steps)\n",
                num_or(root, "makespan_s", 0),
                num_or(root, "critical_s", 0),
                100.0 * num_or(root, "coverage", 0),
                num_or(root, "critical_steps", 0));
    if (root.contains("imbalance") &&
        root.at("imbalance").type() == Json::Type::Object) {
      const Json& im = root.at("imbalance");
      std::printf("  imbalance: max/mean busy %.2fx   dominant straggler:"
                  " rank %.0f\n",
                  num_or(im, "ratio", 1.0),
                  num_or(im, "straggler_rank", -1.0));
    }
    if (root.contains("fleet_blame") &&
        root.at("fleet_blame").type() == Json::Type::Object &&
        root.at("fleet_blame").contains("pct")) {
      const Json& pct = root.at("fleet_blame").at("pct");
      std::printf("  fleet blame: compute %.1f%%  memory %.1f%%  launch"
                  " %.1f%%  comm-wait %.1f%%  imbalance %.1f%%\n",
                  num_or(pct, "compute", 0), num_or(pct, "memory", 0),
                  num_or(pct, "launch_transfer", 0),
                  num_or(pct, "comm_wait", 0),
                  num_or(pct, "imbalance", 0));
    }
    if (root.contains("stragglers") &&
        root.at("stragglers").type() == Json::Type::Array) {
      for (const Json& s : root.at("stragglers").items()) {
        std::printf("    rank %4.0f: %.3e s busy  (%.1f%% of fleet)\n",
                    num_or(s, "rank", -1), num_or(s, "busy_s", 0),
                    100.0 * num_or(s, "share", 0));
      }
    }
    if (root.contains("diagnostics") &&
        root.at("diagnostics").type() == Json::Type::Array) {
      for (const Json& d : root.at("diagnostics").items()) {
        std::printf("  DIAGNOSTIC: %s\n", d.as_string().c_str());
      }
    }
  }

  bool ok = true;
  if (opt.min_coverage >= 0.0) {
    const bool wf = root.contains("well_formed") &&
                    root.at("well_formed").type() == Json::Type::Bool &&
                    root.at("well_formed").as_bool();
    const double cov = num_or(root, "coverage", 0.0);
    if (!wf) {
      std::fprintf(stderr, "coe_report: GATE FAIL %s: merged view is not"
                   " well-formed (unmatched or truncated rank logs)\n",
                   path.c_str());
      ok = false;
    }
    if (cov < opt.min_coverage) {
      std::fprintf(stderr, "coe_report: GATE FAIL %s: distributed critical"
                   " path covers %.4f%% of the makespan, need >= %.4f%%\n",
                   path.c_str(), 100.0 * cov, 100.0 * opt.min_coverage);
      ok = false;
    }
    if (ok) {
      std::fprintf(stderr, "coe_report: gate PASS %s (xray coverage"
                   " %.4f%%)\n", path.c_str(), 100.0 * cov);
    }
  }
  return ok;
}

bool report_one(const std::string& path, const Options& opt) {
  // Merged cluster reports are dispatched by schema, everything else by
  // the trace loader.
  {
    std::string text;
    if (read_file(path, &text)) {
      Json root;
      try {
        root = Json::parse(text);
      } catch (const std::exception&) {
        root = Json();  // let load_trace produce the error message
      }
      if (root.type() == Json::Type::Object && root.contains("schema") &&
          root.at("schema").type() == Json::Type::String &&
          root.at("schema").as_string() == "coe-xray-v1") {
        return report_xray(path, root, opt);
      }
    }
  }
  coe::obs::TraceBuffer buf;
  std::string title;
  if (!load_trace(path, &buf, &title)) return false;
  if (buf.empty()) {
    std::fprintf(stderr, "coe_report: %s: trace has no events\n",
                 path.c_str());
    return false;
  }
  const coe::prof::DagProfile prof = coe::prof::analyze(buf);
  if (opt.json) {
    std::printf("%s\n", coe::prof::profile_json(prof, nullptr, title)
                            .dump().c_str());
  } else {
    std::fputs(coe::prof::bottleneck_report(prof, title).c_str(), stdout);
  }
  bool ok = true;
  if (opt.min_coverage >= 0.0) {
    if (prof.dropped > 0) {
      std::fprintf(stderr, "coe_report: GATE FAIL %s: %llu events dropped"
                   " from the ring (attribution incomplete)\n",
                   path.c_str(),
                   static_cast<unsigned long long>(prof.dropped));
      ok = false;
    }
    if (prof.coverage < opt.min_coverage) {
      std::fprintf(stderr, "coe_report: GATE FAIL %s: critical path covers"
                   " %.4f%% of the window, need >= %.4f%%\n",
                   path.c_str(), 100.0 * prof.coverage,
                   100.0 * opt.min_coverage);
      ok = false;
    }
    if (ok) {
      std::fprintf(stderr, "coe_report: gate PASS %s (coverage %.4f%%)\n",
                   path.c_str(), 100.0 * prof.coverage);
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--check-coverage=", 0) == 0) {
      opt.min_coverage = std::atof(arg.c_str() + std::strlen("--check-coverage="));
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "-h" || arg == "--help") {
      std::printf("usage: coe_report [--check-coverage=FRAC] [--json]"
                  " TRACE_or_BENCH.json...\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s [--check-coverage=FRAC] [--json]"
                 " TRACE_or_BENCH.json...\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (const auto& f : files) ok = report_one(f, opt) && ok;
  return ok ? 0 : 1;
}
