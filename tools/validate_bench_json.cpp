// Validates BENCH_*.json artifacts against the coe-bench-v1 schema
// (DESIGN.md section 10.3). Usage:
//
//   validate_bench_json BENCH_a.json [BENCH_b.json ...]
//
// Checks every file and reports per-file PASS/FAIL; exits nonzero if any
// file fails. When a report references a trace file that exists next to
// it, the trace is parsed and checked for a traceEvents array too.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using coe::obs::Json;

std::vector<std::string> g_errors;

void fail(const std::string& what) { g_errors.push_back(what); }

void check_number(const Json& o, const char* key, bool non_negative = true) {
  if (!o.contains(key)) return fail(std::string("missing \"") + key + "\"");
  const Json& v = o.at(key);
  if (v.type() != Json::Type::Number) {
    return fail(std::string("\"") + key + "\" is not a number");
  }
  if (non_negative && v.as_number() < 0.0) {
    fail(std::string("\"") + key + "\" is negative");
  }
}

void check_metrics_section(const Json& metrics, const char* key) {
  if (!metrics.contains(key)) {
    return fail(std::string("metrics missing \"") + key + "\"");
  }
  if (metrics.at(key).type() != Json::Type::Object) {
    fail(std::string("metrics.") + key + " is not an object");
  }
}

void check_machine(const Json& m, std::size_t i) {
  const std::string where = "machines[" + std::to_string(i) + "]";
  if (m.type() != Json::Type::Object) return fail(where + " is not an object");
  if (!m.contains("name") || m.at("name").type() != Json::Type::String ||
      m.at("name").as_string().empty()) {
    fail(where + " has no name");
  }
  check_number(m, "sim_seconds");
  if (!m.contains("counters")) return fail(where + " missing counters");
  const Json& c = m.at("counters");
  if (c.type() == Json::Type::Null) return;
  if (c.type() != Json::Type::Object) {
    return fail(where + ".counters is neither null nor an object");
  }
  for (const char* key : {"flops", "bytes", "launches", "transfers",
                          "h2d_bytes", "d2h_bytes"}) {
    if (!c.contains(key)) fail(where + ".counters missing " + key);
  }
}

void check_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return fail("trace file " + path + " not readable");
  std::ostringstream ss;
  ss << f.rdbuf();
  Json t;
  try {
    t = Json::parse(ss.str());
  } catch (const std::exception& e) {
    return fail("trace file " + path + ": " + e.what());
  }
  if (!t.contains("traceEvents") ||
      t.at("traceEvents").type() != Json::Type::Array) {
    return fail("trace file " + path + " has no traceEvents array");
  }
  for (const Json& e : t.at("traceEvents").items()) {
    if (e.type() != Json::Type::Object || !e.contains("ts") ||
        !e.contains("dur") || !e.contains("name")) {
      return fail("trace file " + path + " has a malformed event");
    }
  }
}

bool validate(const std::string& path) {
  g_errors.clear();
  std::ifstream f(path);
  if (!f) {
    std::printf("FAIL %s: unreadable\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  Json root;
  try {
    root = Json::parse(ss.str());
  } catch (const std::exception& e) {
    std::printf("FAIL %s: %s\n", path.c_str(), e.what());
    return false;
  }

  if (!root.contains("schema") ||
      root.at("schema").type() != Json::Type::String ||
      root.at("schema").as_string() != "coe-bench-v1") {
    fail("schema is not \"coe-bench-v1\"");
  }
  if (!root.contains("name") ||
      root.at("name").type() != Json::Type::String ||
      root.at("name").as_string().empty()) {
    fail("missing bench name");
  }
  check_number(root, "wall_seconds");

  if (!root.contains("machines") ||
      root.at("machines").type() != Json::Type::Array) {
    fail("missing machines array");
  } else {
    const auto& machines = root.at("machines").items();
    for (std::size_t i = 0; i < machines.size(); ++i) {
      check_machine(machines[i], i);
    }
  }

  if (!root.contains("metrics") ||
      root.at("metrics").type() != Json::Type::Object) {
    fail("missing metrics object");
  } else {
    const Json& metrics = root.at("metrics");
    check_metrics_section(metrics, "counters");
    check_metrics_section(metrics, "gauges");
    check_metrics_section(metrics, "histograms");
  }

  if (!root.contains("trace")) {
    fail("missing trace field (null or object)");
  } else if (root.at("trace").type() == Json::Type::Object) {
    const Json& t = root.at("trace");
    check_number(t, "events");
    check_number(t, "dropped");
    if (!t.contains("path") || t.at("path").type() != Json::Type::String) {
      fail("trace.path missing");
    } else {
      check_trace_file(t.at("path").as_string());
    }
  } else if (root.at("trace").type() != Json::Type::Null) {
    fail("trace is neither null nor an object");
  }

  if (g_errors.empty()) {
    std::printf("PASS %s\n", path.c_str());
    return true;
  }
  std::printf("FAIL %s:\n", path.c_str());
  for (const auto& e : g_errors) std::printf("  - %s\n", e.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_*.json\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok = validate(argv[i]) && ok;
  return ok ? 0 : 1;
}
