// Validates bench artifacts. Usage:
//
//   validate_bench_json FILE.json [FILE2.json ...]
//
// Each file is dispatched by content: a "traceEvents" array is validated
// as a Chrome trace (TRACE_*.json, including the otherData metadata
// write_chrome_trace stamps), schema "coe-prof-v1" as a PROF_*.json
// attribution document (including the phase percentage breakdowns summing
// to 100), schema "coe-xray-v1" as an XRAY_*.json merged cluster report
// (blame splits summing to 100, critical-path steps abutting in time,
// coverage <= 1), and schema "coe-bench-v1" as a bench report (DESIGN.md
// section 10.3). Reports per-file PASS/FAIL; exits nonzero if any file
// fails. When a bench report references a trace file that exists next to
// it, the trace is parsed and checked too.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using coe::obs::Json;

std::vector<std::string> g_errors;

void fail(const std::string& what) { g_errors.push_back(what); }

void check_number(const Json& o, const char* key, bool non_negative = true) {
  if (!o.contains(key)) return fail(std::string("missing \"") + key + "\"");
  const Json& v = o.at(key);
  if (v.type() != Json::Type::Number) {
    return fail(std::string("\"") + key + "\" is not a number");
  }
  if (non_negative && v.as_number() < 0.0) {
    fail(std::string("\"") + key + "\" is negative");
  }
}

void check_metrics_section(const Json& metrics, const char* key) {
  if (!metrics.contains(key)) {
    return fail(std::string("metrics missing \"") + key + "\"");
  }
  if (metrics.at(key).type() != Json::Type::Object) {
    fail(std::string("metrics.") + key + " is not an object");
  }
}

/// The mem.* metrics family DeviceArena::publish emits (DESIGN.md
/// section 14) is a fixed schema: unknown mem.* keys are typos the bench
/// diff would silently drop, so they fail here. Cross-key invariants
/// (spill requires evictions, residency within capacity) are checked too.
void check_mem_metrics(const Json& metrics) {
  static const std::vector<std::string> counters = {
      "mem.admits",          "mem.evictions",     "mem.spill_bytes",
      "mem.faults",          "mem.fault_bytes",   "mem.uploads",
      "mem.upload_bytes",    "mem.writebacks",    "mem.writeback_bytes",
      "mem.elided_transfers", "mem.elided_bytes", "mem.pool_reuse"};
  static const std::vector<std::string> gauges = {
      "mem.resident_bytes", "mem.resident_highwater", "mem.capacity_bytes",
      "mem.allocations", "mem.pool_highwater_bytes"};

  auto scan = [&](const char* section, const std::vector<std::string>& known) {
    double out_evictions = -1.0, out_spill = -1.0;
    double out_resident = -1.0, out_capacity = -1.0;
    if (!metrics.contains(section) ||
        metrics.at(section).type() != Json::Type::Object) {
      return std::pair(out_evictions, out_spill);
    }
    for (const auto& [key, v] : metrics.at(section).fields()) {
      if (key.rfind("mem.", 0) != 0) continue;
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        fail("metrics." + std::string(section) + " has unknown mem.* key \"" +
             key + "\"");
        continue;
      }
      if (v.type() != Json::Type::Number) {
        fail("metrics." + std::string(section) + "." + key +
             " is not a number");
        continue;
      }
      const double x = v.as_number();
      if (x < 0.0) fail(key + " is negative");
      if (key == "mem.evictions") out_evictions = x;
      if (key == "mem.spill_bytes") out_spill = x;
      if (key == "mem.resident_bytes") out_resident = x;
      if (key == "mem.capacity_bytes") out_capacity = x;
    }
    if (out_resident >= 0.0 && out_capacity > 0.0 &&
        out_resident > out_capacity) {
      fail("mem.resident_bytes exceeds mem.capacity_bytes");
    }
    return std::pair(out_evictions, out_spill);
  };
  const auto [evictions, spill] = scan("counters", counters);
  scan("gauges", gauges);
  if (evictions == 0.0 && spill > 0.0) {
    fail("mem.spill_bytes > 0 with mem.evictions == 0");
  }
}

/// The net.* metrics family (DESIGN.md section 15) nests sweep keys under
/// arbitrary prefixes (net.allreduce.p64.rd.messages, net.headline.*), so
/// the pinned schema is the LEAF name: every net.* key must end in a known
/// quantity, hold a non-negative number, and per prefix the repriced
/// timeline can never exceed the sequentialized bound it replaces, nor can
/// a prefix report messages without bytes (or vice versa) when both exist.
void check_net_metrics(const Json& metrics) {
  static const std::vector<std::string> leaves = {
      "messages",   "bytes",           "reductions",
      "timeline_s", "sequential_s",    "comm_sequential_s",
      "compute_s",  "bisection_floor_s", "speedup",
      "schedule_speedup", "modeled_s", "bitwise"};
  for (const char* section : {"counters", "gauges"}) {
    if (!metrics.contains(section) ||
        metrics.at(section).type() != Json::Type::Object) {
      continue;
    }
    // prefix -> (timeline, sequential, messages, bytes); -1 = absent.
    struct NetGroup {
      double timeline = -1.0, sequential = -1.0;
      double messages = -1.0, bytes = -1.0;
    };
    std::map<std::string, NetGroup> groups;
    for (const auto& [key, v] : metrics.at(section).fields()) {
      if (key.rfind("net.", 0) != 0) continue;
      const auto dot = key.rfind('.');
      const std::string leaf = key.substr(dot + 1);
      const std::string prefix = key.substr(0, dot);
      if (std::find(leaves.begin(), leaves.end(), leaf) == leaves.end()) {
        fail("metrics." + std::string(section) + " has unknown net.* leaf \"" +
             key + "\"");
        continue;
      }
      if (v.type() != Json::Type::Number) {
        fail("metrics." + std::string(section) + "." + key +
             " is not a number");
        continue;
      }
      const double x = v.as_number();
      if (x < 0.0) fail(key + " is negative");
      if (leaf == "bitwise" && x != 0.0 && x != 1.0) {
        fail(key + " is not a 0/1 flag");
      }
      if (leaf == "timeline_s") groups[prefix].timeline = x;
      if (leaf == "sequential_s") groups[prefix].sequential = x;
      if (leaf == "messages") groups[prefix].messages = x;
      if (leaf == "bytes") groups[prefix].bytes = x;
    }
    for (const auto& [prefix, g] : groups) {
      if (g.timeline >= 0.0 && g.sequential >= 0.0 &&
          g.timeline > g.sequential * (1.0 + 1e-9)) {
        fail(prefix + ".timeline_s exceeds " + prefix + ".sequential_s");
      }
      if (g.messages >= 0.0 && g.bytes >= 0.0 &&
          (g.messages > 0.0) != (g.bytes > 0.0)) {
        fail(prefix + ": messages and bytes disagree about traffic");
      }
    }
  }
}

/// The resil.* metrics family (PR 1 + the store-integrity counters): fixed
/// flat schema, every value a non-negative number. The integrity invariant
/// is directional: a fallback restore can only happen after a generation
/// was refused, so crc_fallbacks can never exceed refused_generations.
void check_resil_metrics(const Json& metrics) {
  static const std::vector<std::string> known = {
      "resil.faults",          "resil.checkpoints",
      "resil.checkpoint_bytes", "resil.steps_replayed",
      "resil.wasted_s",        "resil.checkpoint_s",
      "resil.verifications",   "resil.detections",
      "resil.rollbacks",       "resil.escapes",
      "resil.checkpoint_aborts", "resil.verify_s",
      "resil.refused_generations", "resil.crc_fallbacks"};
  for (const char* section : {"counters", "gauges"}) {
    if (!metrics.contains(section) ||
        metrics.at(section).type() != Json::Type::Object) {
      continue;
    }
    double refused = -1.0, fallbacks = -1.0;
    for (const auto& [key, v] : metrics.at(section).fields()) {
      if (key.rfind("resil.", 0) != 0) continue;
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        fail("metrics." + std::string(section) +
             " has unknown resil.* key \"" + key + "\"");
        continue;
      }
      if (v.type() != Json::Type::Number) {
        fail("metrics." + std::string(section) + "." + key +
             " is not a number");
        continue;
      }
      const double x = v.as_number();
      if (x < 0.0) fail(key + " is negative");
      if (key == "resil.refused_generations") refused = x;
      if (key == "resil.crc_fallbacks") fallbacks = x;
    }
    if (fallbacks >= 0.0 && fallbacks > std::max(refused, 0.0)) {
      fail("resil.crc_fallbacks exceeds resil.refused_generations");
    }
  }
}

/// The phoenix.* metrics family (DESIGN.md §17): fixed flat schema plus
/// the recovery invariants — a repair needs a detection, an adoption or
/// retirement needs a repair, buddy/bootstrap message and byte counters
/// must agree about whether traffic happened.
void check_phoenix_metrics(const Json& metrics) {
  static const std::vector<std::string> known = {
      "phoenix.kills",          "phoenix.detections",
      "phoenix.repairs",        "phoenix.adoptions",
      "phoenix.retirements",    "phoenix.ckpt_commits",
      "phoenix.ckpt_aborts",    "phoenix.restores",
      "phoenix.crc_fallbacks",  "phoenix.replayed_steps",
      "phoenix.buddy_msgs",     "phoenix.buddy_bytes",
      "phoenix.shipped_msgs",   "phoenix.shipped_bytes",
      "phoenix.repair_s",       "phoenix.lost_work_s"};
  for (const char* section : {"counters", "gauges"}) {
    if (!metrics.contains(section) ||
        metrics.at(section).type() != Json::Type::Object) {
      continue;
    }
    std::map<std::string, double> got;
    for (const auto& [key, v] : metrics.at(section).fields()) {
      if (key.rfind("phoenix.", 0) != 0) continue;
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        fail("metrics." + std::string(section) +
             " has unknown phoenix.* key \"" + key + "\"");
        continue;
      }
      if (v.type() != Json::Type::Number) {
        fail("metrics." + std::string(section) + "." + key +
             " is not a number");
        continue;
      }
      const double x = v.as_number();
      if (x < 0.0) fail(key + " is negative");
      got[key] = x;
    }
    auto val = [&got](const char* k) {
      auto it = got.find(k);
      return it == got.end() ? -1.0 : it->second;
    };
    const double repairs = val("phoenix.repairs");
    const double detections = val("phoenix.detections");
    if (repairs > 0.0 && detections == 0.0) {
      fail("phoenix.repairs > 0 with phoenix.detections == 0");
    }
    const double changes = std::max(val("phoenix.adoptions"), 0.0) +
                           std::max(val("phoenix.retirements"), 0.0);
    if (changes > 0.0 && repairs == 0.0) {
      fail("phoenix membership changed with phoenix.repairs == 0");
    }
    for (const char* pair : {"buddy", "shipped"}) {
      const double msgs = val(("phoenix." + std::string(pair) + "_msgs").c_str());
      const double bytes =
          val(("phoenix." + std::string(pair) + "_bytes").c_str());
      if (msgs >= 0.0 && bytes >= 0.0 && (msgs > 0.0) != (bytes > 0.0)) {
        fail("phoenix." + std::string(pair) +
             " message and byte counters disagree about traffic");
      }
    }
  }
}

/// One five-way blame entry (a per-rank row or the fleet mean): the five
/// pct values must exist and, when the entry has any time, sum to 100.
void check_blame_entry(const Json& b, const std::string& where) {
  if (b.type() != Json::Type::Object) return fail(where + " is not an object");
  check_number(b, "busy_s");
  if (!b.contains("dominant") ||
      b.at("dominant").type() != Json::Type::String) {
    fail(where + " missing dominant");
  }
  if (!b.contains("pct") || b.at("pct").type() != Json::Type::Object) {
    return fail(where + " missing pct object");
  }
  const Json& pct = b.at("pct");
  double sum = 0.0;
  bool have_all = true;
  for (const char* key :
       {"compute", "memory", "launch_transfer", "comm_wait", "imbalance"}) {
    if (!pct.contains(key) || pct.at(key).type() != Json::Type::Number) {
      fail(where + ".pct missing " + key);
      have_all = false;
      continue;
    }
    sum += pct.at(key).as_number();
  }
  if (have_all && sum > 0.0 && std::fabs(sum - 100.0) > 1e-6) {
    fail(where + ".pct sums to " + std::to_string(sum) + ", not 100");
  }
}

/// coe-xray-v1 (XRAY_*.json): the merged cluster-wide report. Enforces the
/// invariants the xray analysis is built on: every blame split sums to
/// 100%, the imbalance ratio is a max/mean (>= 1 whenever defined), the
/// straggler rank indexes a real rank, the critical path covers at most
/// the makespan, and its steps run earliest-first with abutting slices.
void check_xray(const Json& root) {
  if (!root.contains("name") ||
      root.at("name").type() != Json::Type::String) {
    fail("missing string \"name\"");
  }
  check_number(root, "ranks");
  check_number(root, "makespan_s");
  check_number(root, "timeline_s");
  check_number(root, "messages");
  check_number(root, "matched");
  check_number(root, "unmatched_sends");
  check_number(root, "critical_s");
  check_number(root, "critical_steps");
  check_number(root, "coverage");
  if (!root.contains("well_formed") ||
      root.at("well_formed").type() != Json::Type::Bool) {
    fail("missing boolean well_formed");
  }
  if (!root.contains("diagnostics") ||
      root.at("diagnostics").type() != Json::Type::Array) {
    fail("missing diagnostics array");
  }
  if (root.contains("coverage") &&
      root.at("coverage").type() == Json::Type::Number &&
      root.at("coverage").as_number() > 1.0 + 1e-6) {
    fail("coverage exceeds 1");
  }

  const double ranks =
      root.contains("ranks") && root.at("ranks").type() == Json::Type::Number
          ? root.at("ranks").as_number()
          : 0.0;
  if (!root.contains("imbalance") ||
      root.at("imbalance").type() != Json::Type::Object) {
    fail("missing imbalance object");
  } else {
    const Json& im = root.at("imbalance");
    check_number(im, "mean_busy_s");
    check_number(im, "max_busy_s");
    if (!im.contains("ratio") ||
        im.at("ratio").type() != Json::Type::Number) {
      fail("imbalance.ratio missing");
    } else if (im.at("ratio").as_number() < 1.0 - 1e-9) {
      fail("imbalance.ratio below 1");
    }
    if (!im.contains("straggler_rank") ||
        im.at("straggler_rank").type() != Json::Type::Number) {
      fail("imbalance.straggler_rank missing");
    } else {
      const double r = im.at("straggler_rank").as_number();
      if (r < -1.0 || r >= ranks) {
        fail("imbalance.straggler_rank out of range");
      }
    }
  }

  if (!root.contains("blame") ||
      root.at("blame").type() != Json::Type::Array) {
    fail("missing blame array");
  } else {
    const auto& blame = root.at("blame").items();
    if (static_cast<double>(blame.size()) != ranks) {
      fail("blame array size != ranks");
    }
    for (std::size_t i = 0; i < blame.size(); ++i) {
      check_blame_entry(blame[i], "blame[" + std::to_string(i) + "]");
    }
  }
  if (!root.contains("fleet_blame")) {
    fail("missing fleet_blame");
  } else {
    check_blame_entry(root.at("fleet_blame"), "fleet_blame");
  }

  if (!root.contains("critical_edge_seconds") ||
      root.at("critical_edge_seconds").type() != Json::Type::Object) {
    fail("missing critical_edge_seconds object");
  }
  if (!root.contains("critical_path") ||
      root.at("critical_path").type() != Json::Type::Array) {
    fail("missing critical_path array");
  } else {
    const auto& steps = root.at("critical_path").items();
    double prev_end = 0.0;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const Json& s = steps[i];
      const std::string where = "critical_path[" + std::to_string(i) + "]";
      if (s.type() != Json::Type::Object || !s.contains("start_s") ||
          !s.contains("end_s") || !s.contains("rank") ||
          !s.contains("via") || !s.contains("kind")) {
        fail(where + " malformed");
        continue;
      }
      const double lo = s.at("start_s").as_number();
      const double hi = s.at("end_s").as_number();
      if (hi < lo - 1e-12) fail(where + " ends before it starts");
      // Earliest-first and gap-free: each step picks up exactly where the
      // previous one left off (that is what makes the lengths sum to the
      // makespan).
      if (std::fabs(lo - prev_end) > 1e-9) {
        fail(where + " does not abut the previous step");
      }
      prev_end = hi;
      const double r = s.at("rank").as_number();
      if (r < 0.0 || r >= ranks) fail(where + " rank out of range");
    }
  }

  if (!root.contains("stragglers") ||
      root.at("stragglers").type() != Json::Type::Array) {
    fail("missing stragglers array");
  }
  if (!root.contains("phases") ||
      root.at("phases").type() != Json::Type::Array) {
    fail("missing phases array");
  } else {
    const auto& phases = root.at("phases").items();
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const Json& p = phases[i];
      const std::string where = "phases[" + std::to_string(i) + "]";
      if (p.type() != Json::Type::Object || !p.contains("name")) {
        fail(where + " malformed");
        continue;
      }
      check_number(p, "mean_s");
      check_number(p, "max_s");
      if (p.contains("ratio") &&
          p.at("ratio").type() == Json::Type::Number &&
          p.at("ratio").as_number() < 1.0 - 1e-9) {
        fail(where + ".ratio below 1");
      }
    }
  }
}

/// The xray.* gauges xray::publish emits are a fixed schema like mem.*:
/// unknown keys fail, the blame percentages must sum to 100 when any are
/// present, and coverage/ratio obey the same bounds as the document.
void check_xray_metrics(const Json& metrics) {
  static const std::vector<std::string> known = {
      "xray.ranks",           "xray.well_formed",
      "xray.messages",        "xray.matched",
      "xray.unmatched_sends", "xray.makespan_s",
      "xray.timeline_s",      "xray.critical_s",
      "xray.coverage",        "xray.imbalance_ratio",
      "xray.straggler_rank",  "xray.straggler_share",
      "xray.blame.compute_pct",
      "xray.blame.memory_pct",
      "xray.blame.launch_transfer_pct",
      "xray.blame.comm_wait_pct",
      "xray.blame.imbalance_pct"};
  if (!metrics.contains("gauges") ||
      metrics.at("gauges").type() != Json::Type::Object) {
    return;
  }
  double blame_sum = 0.0;
  int blame_keys = 0;
  for (const auto& [key, v] : metrics.at("gauges").fields()) {
    if (key.rfind("xray.", 0) != 0) continue;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      fail("metrics.gauges has unknown xray.* key \"" + key + "\"");
      continue;
    }
    if (v.type() != Json::Type::Number) {
      fail("metrics.gauges." + key + " is not a number");
      continue;
    }
    const double x = v.as_number();
    // straggler_rank may be -1 (no compute anywhere); everything else is
    // non-negative.
    if (x < 0.0 && key != "xray.straggler_rank") fail(key + " is negative");
    if (key == "xray.coverage" && x > 1.0 + 1e-6) {
      fail("xray.coverage exceeds 1");
    }
    if (key == "xray.imbalance_ratio" && x < 1.0 - 1e-9) {
      fail("xray.imbalance_ratio below 1");
    }
    if (key == "xray.well_formed" && x != 0.0 && x != 1.0) {
      fail("xray.well_formed is not a 0/1 flag");
    }
    if (key.rfind("xray.blame.", 0) == 0) {
      blame_sum += x;
      ++blame_keys;
    }
  }
  if (blame_keys == 5 && blame_sum > 0.0 &&
      std::fabs(blame_sum - 100.0) > 1e-6) {
    fail("xray.blame.* percentages sum to " + std::to_string(blame_sum) +
         ", not 100");
  }
}

void check_machine(const Json& m, std::size_t i) {
  const std::string where = "machines[" + std::to_string(i) + "]";
  if (m.type() != Json::Type::Object) return fail(where + " is not an object");
  if (!m.contains("name") || m.at("name").type() != Json::Type::String ||
      m.at("name").as_string().empty()) {
    fail(where + " has no name");
  }
  check_number(m, "sim_seconds");
  if (!m.contains("counters")) return fail(where + " missing counters");
  const Json& c = m.at("counters");
  if (c.type() == Json::Type::Null) return;
  if (c.type() != Json::Type::Object) {
    return fail(where + ".counters is neither null nor an object");
  }
  for (const char* key : {"flops", "bytes", "launches", "transfers",
                          "h2d_bytes", "d2h_bytes"}) {
    if (!c.contains(key)) fail(where + ".counters missing " + key);
  }
}

/// Validates an already-parsed Chrome trace document (TRACE_*.json).
/// `where` labels errors. Checks the event array plus the otherData
/// metadata write_chrome_trace stamps (dropped count, machine name).
void check_trace_doc(const Json& t, const std::string& where) {
  if (!t.contains("traceEvents") ||
      t.at("traceEvents").type() != Json::Type::Array) {
    return fail(where + " has no traceEvents array");
  }
  for (const Json& e : t.at("traceEvents").items()) {
    if (e.type() != Json::Type::Object || !e.contains("ts") ||
        !e.contains("name")) {
      return fail(where + " has a malformed event");
    }
    const std::string ph = e.contains("ph") ? e.at("ph").as_string() : "X";
    if (ph == "X" && !e.contains("dur")) {
      return fail(where + " has a complete event without dur");
    }
  }
  if (!t.contains("otherData") ||
      t.at("otherData").type() != Json::Type::Object) {
    return fail(where + " missing otherData metadata");
  }
  const Json& meta = t.at("otherData");
  if (!meta.contains("dropped_events") ||
      meta.at("dropped_events").type() != Json::Type::Number) {
    fail(where + " otherData missing dropped_events");
  }
  if (!meta.contains("machine") ||
      meta.at("machine").type() != Json::Type::String) {
    fail(where + " otherData missing machine");
  }
  if (!meta.contains("launch_overhead_s")) {
    fail(where + " otherData missing launch_overhead_s");
  }
}

void check_trace_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return fail("trace file " + path + " not readable");
  std::ostringstream ss;
  ss << f.rdbuf();
  Json t;
  try {
    t = Json::parse(ss.str());
  } catch (const std::exception& e) {
    return fail("trace file " + path + ": " + e.what());
  }
  check_trace_doc(t, "trace file " + path);
}

/// coe-prof-v1 (PROF_*.json): the critical-path attribution document.
/// Beyond type checks this enforces the two invariants the report relies
/// on: each phase's five-way percentage breakdown sums to 100 (when the
/// phase has any time at all) and coverage = critical_s / window_s.
void check_prof(const Json& root) {
  for (const char* key : {"name", "machine"}) {
    if (!root.contains(key) ||
        root.at(key).type() != Json::Type::String) {
      fail(std::string("missing string \"") + key + "\"");
    }
  }
  check_number(root, "launch_overhead_s");
  check_number(root, "dropped_events");
  check_number(root, "events");
  check_number(root, "window_s");
  check_number(root, "busy_s");
  check_number(root, "critical_s");
  check_number(root, "coverage");
  check_number(root, "overlap_efficiency");
  check_number(root, "critical_steps");
  if (!root.contains("critical_edge_seconds") ||
      root.at("critical_edge_seconds").type() != Json::Type::Object) {
    fail("missing critical_edge_seconds object");
  }
  if (root.contains("window_s") && root.contains("critical_s") &&
      root.contains("coverage") &&
      root.at("window_s").type() == Json::Type::Number) {
    const double w = root.at("window_s").as_number();
    if (w > 0.0) {
      const double want = root.at("critical_s").as_number() / w;
      if (std::fabs(root.at("coverage").as_number() - want) > 1e-9) {
        fail("coverage != critical_s / window_s");
      }
    }
  }

  if (!root.contains("streams") ||
      root.at("streams").type() != Json::Type::Array) {
    fail("missing streams array");
  } else {
    for (const Json& s : root.at("streams").items()) {
      if (s.type() != Json::Type::Object || !s.contains("stream") ||
          !s.contains("busy_s") || !s.contains("utilization")) {
        fail("malformed stream entry");
      }
    }
  }

  if (!root.contains("phases") ||
      root.at("phases").type() != Json::Type::Array) {
    return fail("missing phases array");
  }
  const auto& phases = root.at("phases").items();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Json& p = phases[i];
    const std::string where = "phases[" + std::to_string(i) + "]";
    if (p.type() != Json::Type::Object || !p.contains("name")) {
      fail(where + " malformed");
      continue;
    }
    for (const char* key :
         {"busy_s", "critical_s", "stall_s", "compute_s", "memory_s",
          "launch_s", "transfer_s"}) {
      check_number(p, key);
    }
    if (!p.contains("bound") ||
        p.at("bound").type() != Json::Type::String) {
      fail(where + " missing bound");
    }
    if (!p.contains("pct") || p.at("pct").type() != Json::Type::Object) {
      fail(where + " missing pct object");
      continue;
    }
    const Json& pct = p.at("pct");
    double sum = 0.0;
    bool have_all = true;
    for (const char* key : {"compute", "memory", "launch", "transfer",
                            "dependency_stall"}) {
      if (!pct.contains(key) ||
          pct.at(key).type() != Json::Type::Number) {
        fail(where + ".pct missing " + key);
        have_all = false;
        continue;
      }
      sum += pct.at(key).as_number();
    }
    const double total = (p.contains("busy_s") && p.contains("stall_s"))
                             ? p.at("busy_s").as_number() +
                                   p.at("stall_s").as_number()
                             : 0.0;
    if (have_all && total > 0.0 && std::fabs(sum - 100.0) > 1e-6) {
      fail(where + ".pct sums to " + std::to_string(sum) + ", not 100");
    }
  }

  if (!root.contains("spans")) {
    fail("missing spans (array or null)");
  } else if (root.at("spans").type() != Json::Type::Null &&
             root.at("spans").type() != Json::Type::Array) {
    fail("spans is neither null nor an array");
  }
}

bool validate(const std::string& path) {
  g_errors.clear();
  std::ifstream f(path);
  if (!f) {
    std::printf("FAIL %s: unreadable\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  Json root;
  try {
    root = Json::parse(ss.str());
  } catch (const std::exception& e) {
    std::printf("FAIL %s: %s\n", path.c_str(), e.what());
    return false;
  }

  // Dispatch by content: Chrome traces and prof documents get their own
  // schema checks; everything else must be a coe-bench-v1 report.
  if (root.type() == Json::Type::Object && root.contains("traceEvents")) {
    check_trace_doc(root, path);
    if (g_errors.empty()) {
      std::printf("PASS %s (trace)\n", path.c_str());
      return true;
    }
    std::printf("FAIL %s:\n", path.c_str());
    for (const auto& e : g_errors) std::printf("  - %s\n", e.c_str());
    return false;
  }
  if (root.type() == Json::Type::Object && root.contains("schema") &&
      root.at("schema").type() == Json::Type::String &&
      root.at("schema").as_string() == "coe-prof-v1") {
    check_prof(root);
    if (g_errors.empty()) {
      std::printf("PASS %s (prof)\n", path.c_str());
      return true;
    }
    std::printf("FAIL %s:\n", path.c_str());
    for (const auto& e : g_errors) std::printf("  - %s\n", e.c_str());
    return false;
  }
  if (root.type() == Json::Type::Object && root.contains("schema") &&
      root.at("schema").type() == Json::Type::String &&
      root.at("schema").as_string() == "coe-xray-v1") {
    check_xray(root);
    if (g_errors.empty()) {
      std::printf("PASS %s (xray)\n", path.c_str());
      return true;
    }
    std::printf("FAIL %s:\n", path.c_str());
    for (const auto& e : g_errors) std::printf("  - %s\n", e.c_str());
    return false;
  }

  if (!root.contains("schema") ||
      root.at("schema").type() != Json::Type::String ||
      root.at("schema").as_string() != "coe-bench-v1") {
    fail("schema is not \"coe-bench-v1\"");
  }
  if (!root.contains("name") ||
      root.at("name").type() != Json::Type::String ||
      root.at("name").as_string().empty()) {
    fail("missing bench name");
  }
  check_number(root, "wall_seconds");

  if (!root.contains("machines") ||
      root.at("machines").type() != Json::Type::Array) {
    fail("missing machines array");
  } else {
    const auto& machines = root.at("machines").items();
    for (std::size_t i = 0; i < machines.size(); ++i) {
      check_machine(machines[i], i);
    }
  }

  if (!root.contains("metrics") ||
      root.at("metrics").type() != Json::Type::Object) {
    fail("missing metrics object");
  } else {
    const Json& metrics = root.at("metrics");
    check_metrics_section(metrics, "counters");
    check_metrics_section(metrics, "gauges");
    check_metrics_section(metrics, "histograms");
    check_mem_metrics(metrics);
    check_net_metrics(metrics);
    check_resil_metrics(metrics);
    check_phoenix_metrics(metrics);
    check_xray_metrics(metrics);
  }

  if (!root.contains("trace")) {
    fail("missing trace field (null or object)");
  } else if (root.at("trace").type() == Json::Type::Object) {
    const Json& t = root.at("trace");
    check_number(t, "events");
    check_number(t, "dropped");
    if (!t.contains("path") || t.at("path").type() != Json::Type::String) {
      fail("trace.path missing");
    } else {
      check_trace_file(t.at("path").as_string());
    }
  } else if (root.at("trace").type() != Json::Type::Null) {
    fail("trace is neither null nor an object");
  }

  // "profile" (the PROF_ attribution pointer) is optional for backward
  // compatibility with pre-prof baselines, but must be well-formed when
  // present: null, or {path, critical_s, coverage}.
  if (root.contains("profile") &&
      root.at("profile").type() != Json::Type::Null) {
    if (root.at("profile").type() != Json::Type::Object) {
      fail("profile is neither null nor an object");
    } else {
      const Json& pr = root.at("profile");
      check_number(pr, "critical_s");
      check_number(pr, "coverage");
      if (!pr.contains("path") ||
          pr.at("path").type() != Json::Type::String) {
        fail("profile.path missing");
      }
    }
  }

  if (g_errors.empty()) {
    std::printf("PASS %s\n", path.c_str());
    return true;
  }
  std::printf("FAIL %s:\n", path.c_str());
  for (const auto& e : g_errors) std::printf("  - %s\n", e.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_*.json [TRACE_*.json PROF_*.json ...]\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok = validate(argv[i]) && ok;
  return ok ? 0 : 1;
}
