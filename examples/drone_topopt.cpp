// Opt-framework example (Section 4.7, Figure 5): topology optimization of
// a cantilever bracket with the matrix-free CG solver -- the same workload
// class that designed the paper's flight-tested drone. Prints the evolving
// design as ASCII art and writes the final density field.
#include <cstdio>
#include <fstream>

#include "topopt/simp.hpp"

using namespace coe;

namespace {

void print_design(const topopt::TopOpt& opt, std::size_t nelx,
                  std::size_t nely) {
  const char* shades = " .:-=+*#%@";
  for (std::size_t ey = 0; ey < nely; ++ey) {
    std::printf("  ");
    for (std::size_t ex = 0; ex < nelx; ++ex) {
      const double d = opt.density(ex, ey);
      std::printf("%c", shades[static_cast<int>(d * 9.999)]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("drone bracket design: SIMP topology optimization\n");
  std::printf("left edge clamped, unit load at right mid-edge, 40%% "
              "material budget\n\n");

  auto ctx = core::make_device(hsim::machines::v100());
  topopt::TopOptConfig cfg;
  cfg.nelx = 60;
  cfg.nely = 20;
  cfg.volfrac = 0.4;
  topopt::TopOpt opt(ctx, cfg);

  std::size_t total_cg = 0;
  for (int iter = 1; iter <= 40; ++iter) {
    const auto info = opt.iterate();
    total_cg += info.cg_iters;
    if (iter % 10 == 0) {
      std::printf("iteration %2d: compliance %.3f, volume %.3f, CG iters"
                  " %zu\n",
                  iter, info.compliance, info.volume, info.cg_iters);
    }
  }
  std::printf("\nfinal design:\n");
  print_design(opt, cfg.nelx, cfg.nely);

  std::ofstream csv("drone_density.csv");
  for (std::size_t ey = 0; ey < cfg.nely; ++ey) {
    for (std::size_t ex = 0; ex < cfg.nelx; ++ex) {
      csv << opt.density(ex, ey) << (ex + 1 < cfg.nelx ? "," : "\n");
    }
  }
  std::printf("\nwrote drone_density.csv; %zu total matrix-free CG"
              " iterations, modeled V100 time %.1f ms\n",
              total_cg, ctx.simulated_time() * 1e3);
  return 0;
}
