// Cardioid-style cardiac simulation (Section 4.1): stimulate a tissue
// sheet, watch the action-potential wave cross it, and compare the libm
// and DSL-generated (rational polynomial) reaction kernels end to end.
#include <algorithm>
#include <cstdio>

#include "reaction/monodomain.hpp"

using namespace coe;

namespace {

void run_tissue(reaction::RateKind rates, const char* label) {
  auto gpu = core::make_device(hsim::machines::v100());
  auto cpu = core::make_cpu(hsim::machines::power9());
  reaction::TissueConfig cfg;
  cfg.nx = 96;
  cfg.ny = 32;
  cfg.rates = rates;
  reaction::Monodomain tissue(gpu, cpu, cfg);
  tissue.stimulate(0, 6, 0, cfg.ny, 80.0, 3.0);

  std::printf("%s kernel:\n", label);
  std::printf("  t(ms)  excited%%  wavefront x\n");
  for (int snapshot = 0; snapshot < 8; ++snapshot) {
    tissue.run(3.0);
    // Furthest column that has fired (v > 0 anywhere in the column).
    std::size_t front = 0;
    for (std::size_t ix = 0; ix < cfg.nx; ++ix) {
      for (std::size_t iy = 0; iy < cfg.ny; ++iy) {
        if (tissue.voltage(ix, iy) > 0.0) front = std::max(front, ix);
      }
    }
    std::printf("  %5.1f   %6.1f   %3zu / %zu\n", tissue.time(),
                100.0 * tissue.excited_fraction(), front, cfg.nx);
  }
  std::printf("  modeled V100 time: %.2f ms for %.0f ms of tissue time\n\n",
              gpu.simulated_time() * 1e3, tissue.time());
}

}  // namespace

int main() {
  std::printf("heart example: action-potential wave on a tissue sheet\n\n");
  run_tissue(reaction::RateKind::Libm, "libm (exact exp-based rates)");
  run_tissue(reaction::RateKind::Rational,
             "Melodee-style rational (exp-free)");
  std::printf("Both kernels propagate the same wave; the rational one runs"
              " with zero libm calls in the inner loop.\n");
  return 0;
}
