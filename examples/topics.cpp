// Data-analytics example (Section 4.4): LDA topic extraction on a
// synthetic multi-topic Zipf corpus, with topic-recovery scoring and the
// Spark-stack cost comparison for a scaled-up run.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analytics/lda.hpp"
#include "analytics/spark.hpp"

using namespace coe;

int main() {
  std::printf("topics example: LDA on a synthetic Zipf corpus\n\n");

  analytics::CorpusConfig ccfg;
  ccfg.vocab = 800;
  ccfg.topics = 6;
  ccfg.docs = 300;
  ccfg.words_per_doc = 150;
  ccfg.topic_eta = 0.03;
  auto corpus = analytics::generate_corpus(ccfg);

  analytics::LdaConfig lcfg;
  lcfg.topics = 6;
  analytics::LdaModel model(corpus.vocab, lcfg);
  std::printf("training (variational EM):\n");
  for (int it = 1; it <= 15; ++it) {
    const double ppl = model.em_iteration(corpus);
    if (it % 5 == 0) std::printf("  iter %2d: perplexity %.1f\n", it, ppl);
  }
  std::printf("topic recovery vs ground truth: %.2f (cosine)\n\n",
              analytics::topic_recovery_score(model, corpus));

  // Top words per learned topic.
  for (std::size_t k = 0; k < lcfg.topics; ++k) {
    auto row = model.beta_row(k);
    std::vector<std::size_t> idx(row.size());
    for (std::size_t w = 0; w < row.size(); ++w) idx[w] = w;
    std::partial_sort(idx.begin(), idx.begin() + 6, idx.end(),
                      [&](std::size_t a, std::size_t b) {
                        return row[a] > row[b];
                      });
    std::printf("  topic %zu top words:", k);
    for (int w = 0; w < 6; ++w) std::printf(" w%zu", idx[size_t(w)]);
    std::printf("\n");
  }

  // What would this cost at Wikipedia scale on 32 nodes?
  analytics::LdaIterationProfile prof;
  prof.compute_flops_per_node = 1.5e12;
  prof.shuffle_bytes_per_pair = 150.0e6;
  prof.aggregate_bytes_per_node = 1.5e9;
  const auto node = hsim::machines::power9();
  const auto net = hsim::clusters::sierra(32);
  const auto def = analytics::cost_iteration(
      prof, analytics::default_stack(), node, net, 32);
  const auto opt = analytics::cost_iteration(
      prof, analytics::optimized_stack(), node, net, 32);
  std::printf("\nscaled to the Wikipedia-class run on 32 nodes:\n"
              "  default stack %.1f s/iteration, optimized %.1f s"
              " (%.2fx)\n",
              def.total(), opt.total(), def.total() / opt.total());
  return 0;
}
