// Quickstart: the minicoe portability layer and machine models in ~100
// lines. Runs a vector triad through the RAJA-style forall on the host,
// then replays the same kernel stream on modeled Sierra-era hardware and
// prints a roofline report -- the core workflow every mini-app in this
// repository builds on.
#include <cstdio>
#include <vector>

#include "core/coe.hpp"

using namespace coe;

int main() {
  std::printf("minicoe quickstart\n==================\n\n");

  // 1. A portable kernel: y = a*x + y over 1M elements.
  const std::size_t n = 1 << 20;
  std::vector<double> x(n, 1.5), y(n, 0.5);

  // Run on a modeled V100 with a POWER9-thread shadow: one execution,
  // two machine predictions.
  auto gpu = core::make_device(hsim::machines::v100());
  const std::size_t cpu = gpu.add_shadow(hsim::machines::power9_thread());

  gpu.set_phase("triad");
  for (int step = 0; step < 10; ++step) {
    gpu.forall(n, {2.0, 24.0}, [&](std::size_t i) {
      y[i] += 2.0 * x[i];
    });
  }
  std::printf("y[42] = %.1f after 10 triads (computed for real)\n\n",
              y[42]);

  // 2. What did that cost on each machine?
  std::printf("kernel stream: %llu launches, %.2f GFLOP, %.2f GB\n",
              static_cast<unsigned long long>(gpu.counters().launches),
              gpu.counters().flops / 1e9, gpu.counters().bytes / 1e9);
  std::printf("  modeled V100 time:        %.4f ms\n",
              gpu.simulated_time() * 1e3);
  std::printf("  modeled P9-thread time:   %.4f ms  (%.1fx slower)\n\n",
              gpu.shadow_time(cpu) * 1e3,
              gpu.shadow_time(cpu) / gpu.simulated_time());

  // 3. Data residency: buffers track host/device copies and charge
  // transfers only when a side is stale.
  core::Buffer<double> buf(gpu, n);
  auto host_side = buf.host_write();
  host_side[0] = 3.14;
  (void)buf.device_read();  // one H2D transfer happens here
  (void)buf.device_read();  // already resident: free
  std::printf("buffer transfers so far: %llu (%.1f MB H2D)\n\n",
              static_cast<unsigned long long>(gpu.counters().transfers),
              gpu.counters().h2d_bytes / 1e6);

  // 4. The machine catalog.
  core::Table t({"machine", "eff. GFLOP/s", "eff. GB/s", "ridge (F/B)"});
  for (const auto& m :
       {hsim::machines::power9(), hsim::machines::p100(),
        hsim::machines::v100(), hsim::machines::knl_node()}) {
    t.row({m.name, core::Table::num(m.flops() / 1e9, 0),
           core::Table::num(m.bandwidth() / 1e9, 0),
           core::Table::num(m.ridge(), 2)});
  }
  t.print();
  std::printf("\nThe triad has arithmetic intensity 2/24 = 0.083 F/B --"
              " far below every ridge, so it is bandwidth-bound"
              " everywhere.\n");
  return 0;
}
