// Opt workflow example (Section 4.7): scheduling a topology-optimization
// job campaign on a simulated 4-GPU node under the three policies, with a
// live utilization trace.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sched/scheduler.hpp"

using namespace coe;

int main() {
  std::printf("workflow example: a topology-optimization campaign on one"
              " 4-GPU node\n\n");

  // 200 design evaluations: mostly quick candidate checks, a handful of
  // expensive loading conditions (heavy tail).
  auto jobs = sched::make_workload({200, 120.0, 0.8, 0.15, 0.0, 77});
  double total_work = 0.0;
  for (const auto& j : jobs) total_work += j.duration;
  std::printf("campaign: %zu jobs, %.0f GPU-seconds of work (ideal"
              " makespan on 4 GPUs: %.0f s)\n\n",
              jobs.size(), total_work, total_work / 4.0);

  for (auto policy : {sched::Policy::Fcfs, sched::Policy::Sjf,
                      sched::Policy::SjfQuota}) {
    sched::Simulator sim({4, policy, 0.0, 0});
    const auto m = sim.run(jobs);
    std::printf("%-10s makespan %7.0f s | mean wait %7.0f s | max wait"
                " %7.0f s | util %5.1f%%\n",
                sched::to_string(policy), m.makespan, m.mean_wait,
                m.max_wait, 100.0 * m.utilization);
  }

  // Gantt-style trace of the first jobs under SJF+Quota.
  sched::Simulator sim({4, sched::Policy::SjfQuota, 0.0, 0});
  sim.run(jobs);
  std::printf("\nfirst 12 dispatches under SJF+Quota:\n");
  std::vector<sched::JobOutcome> out(sim.outcomes().begin(),
                                     sim.outcomes().end());
  std::sort(out.begin(), out.end(),
            [](const sched::JobOutcome& a, const sched::JobOutcome& b) {
              return a.start_time < b.start_time;
            });
  for (int i = 0; i < 12; ++i) {
    std::printf("  t=%7.1f  job %3llu  (%.0f s)\n", out[size_t(i)].start_time,
                static_cast<unsigned long long>(out[size_t(i)].job.id),
                out[size_t(i)].job.duration);
  }
  return 0;
}
