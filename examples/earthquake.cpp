// SW4-style earthquake simulation (Section 4.9): a Ricker point source in
// a 3D domain, 4th-order wave propagation, and a surface shake map (the
// Figure 7 analog) written as a PGM image + CSV.
#include <cstdio>
#include <fstream>

#include "stencil/wave.hpp"

using namespace coe;

int main() {
  std::printf("earthquake example: point-source rupture + shake map\n\n");
  auto ctx = core::make_device(hsim::machines::v100());

  const std::size_t n = 48;
  stencil::WaveOptions opts;  // fused + tiled + device forcing: the
  opts.tiled = true;          // production configuration
  stencil::WaveSolver solver(ctx, n, n, n, 10.0 /*km*/, 3.0 /*km/s*/, opts);

  // A buried "fault patch": a cluster of Ricker sources.
  for (std::size_t s = 0; s < 5; ++s) {
    stencil::PointSource src;
    src.i = n / 3 + s;
    src.j = n / 2;
    src.k = n / 2 + s / 2;  // depth
    src.amplitude = 50.0;
    src.freq = 1.2;
    src.t0 = 0.4 + 0.05 * static_cast<double>(s);  // rupture propagates
    solver.add_source(src);
  }

  const double dt = solver.stable_dt();
  const double t_end = 2.5;
  std::size_t steps = 0;
  while (solver.time() < t_end) {
    solver.step(dt);
    ++steps;
  }
  std::printf("ran %zu steps to t = %.2f s on a %zu^3 grid (h = %.0f m)\n",
              steps, solver.time(), n, solver.h() * 1000.0);
  std::printf("modeled V100 wall time: %.2f ms, %llu kernel launches\n",
              ctx.simulated_time() * 1e3,
              static_cast<unsigned long long>(ctx.counters().launches));

  // Shake map (peak |u| at the surface) as PGM + CSV.
  const auto shake = solver.shake_map();
  double peak = 0.0;
  for (double v : shake) peak = std::max(peak, v);
  {
    std::ofstream pgm("shake_map.pgm");
    pgm << "P2\n" << n << " " << n << "\n255\n";
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        pgm << static_cast<int>(255.0 * shake[i * n + j] / peak) << " ";
      }
      pgm << "\n";
    }
  }
  {
    std::ofstream csv("shake_map.csv");
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        csv << shake[i * n + j] << (j + 1 < n ? "," : "\n");
      }
    }
  }
  std::printf("peak ground motion %.3e; wrote shake_map.pgm and"
              " shake_map.csv (Fig. 7 analog)\n",
              peak);
  return 0;
}
