# Empty dependencies file for sec47_sched.
# This may be replaced when dependencies are built.
