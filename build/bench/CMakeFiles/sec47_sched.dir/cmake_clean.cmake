file(REMOVE_RECURSE
  "CMakeFiles/sec47_sched.dir/sec47_sched.cpp.o"
  "CMakeFiles/sec47_sched.dir/sec47_sched.cpp.o.d"
  "sec47_sched"
  "sec47_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec47_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
