# Empty dependencies file for table2_graph.
# This may be replaced when dependencies are built.
