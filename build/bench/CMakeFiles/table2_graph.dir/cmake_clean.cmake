file(REMOVE_RECURSE
  "CMakeFiles/table2_graph.dir/table2_graph.cpp.o"
  "CMakeFiles/table2_graph.dir/table2_graph.cpp.o.d"
  "table2_graph"
  "table2_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
