# Empty dependencies file for sec43_cretin.
# This may be replaced when dependencies are built.
