file(REMOVE_RECURSE
  "CMakeFiles/sec43_cretin.dir/sec43_cretin.cpp.o"
  "CMakeFiles/sec43_cretin.dir/sec43_cretin.cpp.o.d"
  "sec43_cretin"
  "sec43_cretin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec43_cretin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
