file(REMOVE_RECURSE
  "CMakeFiles/sec41_cardioid.dir/sec41_cardioid.cpp.o"
  "CMakeFiles/sec41_cardioid.dir/sec41_cardioid.cpp.o.d"
  "sec41_cardioid"
  "sec41_cardioid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec41_cardioid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
