# Empty dependencies file for sec41_cardioid.
# This may be replaced when dependencies are built.
