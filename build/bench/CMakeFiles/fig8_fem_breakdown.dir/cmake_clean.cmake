file(REMOVE_RECURSE
  "CMakeFiles/fig8_fem_breakdown.dir/fig8_fem_breakdown.cpp.o"
  "CMakeFiles/fig8_fem_breakdown.dir/fig8_fem_breakdown.cpp.o.d"
  "fig8_fem_breakdown"
  "fig8_fem_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_fem_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
