# Empty compiler generated dependencies file for table4_fem_speedup.
# This may be replaced when dependencies are built.
