file(REMOVE_RECURSE
  "CMakeFiles/table4_fem_speedup.dir/table4_fem_speedup.cpp.o"
  "CMakeFiles/table4_fem_speedup.dir/table4_fem_speedup.cpp.o.d"
  "table4_fem_speedup"
  "table4_fem_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fem_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
