# Empty compiler generated dependencies file for sec45_kavg.
# This may be replaced when dependencies are built.
