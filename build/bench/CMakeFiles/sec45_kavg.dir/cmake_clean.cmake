file(REMOVE_RECURSE
  "CMakeFiles/sec45_kavg.dir/sec45_kavg.cpp.o"
  "CMakeFiles/sec45_kavg.dir/sec45_kavg.cpp.o.d"
  "sec45_kavg"
  "sec45_kavg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec45_kavg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
