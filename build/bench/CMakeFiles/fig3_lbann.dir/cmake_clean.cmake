file(REMOVE_RECURSE
  "CMakeFiles/fig3_lbann.dir/fig3_lbann.cpp.o"
  "CMakeFiles/fig3_lbann.dir/fig3_lbann.cpp.o.d"
  "fig3_lbann"
  "fig3_lbann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lbann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
