# Empty compiler generated dependencies file for fig3_lbann.
# This may be replaced when dependencies are built.
