# Empty compiler generated dependencies file for fig2_lda.
# This may be replaced when dependencies are built.
