file(REMOVE_RECURSE
  "CMakeFiles/fig2_lda.dir/fig2_lda.cpp.o"
  "CMakeFiles/fig2_lda.dir/fig2_lda.cpp.o.d"
  "fig2_lda"
  "fig2_lda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_lda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
