# Empty dependencies file for table5_cleverleaf.
# This may be replaced when dependencies are built.
