file(REMOVE_RECURSE
  "CMakeFiles/table5_cleverleaf.dir/table5_cleverleaf.cpp.o"
  "CMakeFiles/table5_cleverleaf.dir/table5_cleverleaf.cpp.o.d"
  "table5_cleverleaf"
  "table5_cleverleaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cleverleaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
