# Empty compiler generated dependencies file for sec411_vbl.
# This may be replaced when dependencies are built.
