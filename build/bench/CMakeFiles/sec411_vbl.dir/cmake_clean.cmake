file(REMOVE_RECURSE
  "CMakeFiles/sec411_vbl.dir/sec411_vbl.cpp.o"
  "CMakeFiles/sec411_vbl.dir/sec411_vbl.cpp.o.d"
  "sec411_vbl"
  "sec411_vbl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec411_vbl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
