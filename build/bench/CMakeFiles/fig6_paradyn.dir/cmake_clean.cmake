file(REMOVE_RECURSE
  "CMakeFiles/fig6_paradyn.dir/fig6_paradyn.cpp.o"
  "CMakeFiles/fig6_paradyn.dir/fig6_paradyn.cpp.o.d"
  "fig6_paradyn"
  "fig6_paradyn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_paradyn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
