# Empty dependencies file for fig6_paradyn.
# This may be replaced when dependencies are built.
