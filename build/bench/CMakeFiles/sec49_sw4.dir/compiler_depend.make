# Empty compiler generated dependencies file for sec49_sw4.
# This may be replaced when dependencies are built.
