file(REMOVE_RECURSE
  "CMakeFiles/sec49_sw4.dir/sec49_sw4.cpp.o"
  "CMakeFiles/sec49_sw4.dir/sec49_sw4.cpp.o.d"
  "sec49_sw4"
  "sec49_sw4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec49_sw4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
