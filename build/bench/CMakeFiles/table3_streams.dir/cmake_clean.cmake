file(REMOVE_RECURSE
  "CMakeFiles/table3_streams.dir/table3_streams.cpp.o"
  "CMakeFiles/table3_streams.dir/table3_streams.cpp.o.d"
  "table3_streams"
  "table3_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
