# Empty dependencies file for table3_streams.
# This may be replaced when dependencies are built.
