file(REMOVE_RECURSE
  "CMakeFiles/sec46_md.dir/sec46_md.cpp.o"
  "CMakeFiles/sec46_md.dir/sec46_md.cpp.o.d"
  "sec46_md"
  "sec46_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec46_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
