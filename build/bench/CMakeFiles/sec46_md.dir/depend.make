# Empty dependencies file for sec46_md.
# This may be replaced when dependencies are built.
