file(REMOVE_RECURSE
  "CMakeFiles/example_drone_topopt.dir/drone_topopt.cpp.o"
  "CMakeFiles/example_drone_topopt.dir/drone_topopt.cpp.o.d"
  "example_drone_topopt"
  "example_drone_topopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_drone_topopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
