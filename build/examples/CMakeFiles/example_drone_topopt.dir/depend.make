# Empty dependencies file for example_drone_topopt.
# This may be replaced when dependencies are built.
