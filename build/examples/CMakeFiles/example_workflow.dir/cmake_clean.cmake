file(REMOVE_RECURSE
  "CMakeFiles/example_workflow.dir/workflow.cpp.o"
  "CMakeFiles/example_workflow.dir/workflow.cpp.o.d"
  "example_workflow"
  "example_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
