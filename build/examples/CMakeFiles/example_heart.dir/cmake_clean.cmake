file(REMOVE_RECURSE
  "CMakeFiles/example_heart.dir/heart.cpp.o"
  "CMakeFiles/example_heart.dir/heart.cpp.o.d"
  "example_heart"
  "example_heart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
