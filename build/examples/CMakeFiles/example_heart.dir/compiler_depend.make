# Empty compiler generated dependencies file for example_heart.
# This may be replaced when dependencies are built.
