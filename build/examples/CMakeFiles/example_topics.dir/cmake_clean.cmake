file(REMOVE_RECURSE
  "CMakeFiles/example_topics.dir/topics.cpp.o"
  "CMakeFiles/example_topics.dir/topics.cpp.o.d"
  "example_topics"
  "example_topics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
