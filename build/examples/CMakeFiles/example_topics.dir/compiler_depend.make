# Empty compiler generated dependencies file for example_topics.
# This may be replaced when dependencies are built.
