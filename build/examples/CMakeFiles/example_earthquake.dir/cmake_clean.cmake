file(REMOVE_RECURSE
  "CMakeFiles/example_earthquake.dir/earthquake.cpp.o"
  "CMakeFiles/example_earthquake.dir/earthquake.cpp.o.d"
  "example_earthquake"
  "example_earthquake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_earthquake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
