# Empty dependencies file for example_earthquake.
# This may be replaced when dependencies are built.
