# Empty dependencies file for coe_mpi.
# This may be replaced when dependencies are built.
