file(REMOVE_RECURSE
  "libcoe_mpi.a"
)
