file(REMOVE_RECURSE
  "CMakeFiles/coe_mpi.dir/mpi/comm.cpp.o"
  "CMakeFiles/coe_mpi.dir/mpi/comm.cpp.o.d"
  "libcoe_mpi.a"
  "libcoe_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
