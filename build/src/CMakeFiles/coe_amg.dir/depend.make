# Empty dependencies file for coe_amg.
# This may be replaced when dependencies are built.
