file(REMOVE_RECURSE
  "CMakeFiles/coe_amg.dir/amg/boomeramg.cpp.o"
  "CMakeFiles/coe_amg.dir/amg/boomeramg.cpp.o.d"
  "CMakeFiles/coe_amg.dir/amg/struct_solver.cpp.o"
  "CMakeFiles/coe_amg.dir/amg/struct_solver.cpp.o.d"
  "libcoe_amg.a"
  "libcoe_amg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_amg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
