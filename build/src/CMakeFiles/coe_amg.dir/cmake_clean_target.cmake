file(REMOVE_RECURSE
  "libcoe_amg.a"
)
