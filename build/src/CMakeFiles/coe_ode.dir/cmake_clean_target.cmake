file(REMOVE_RECURSE
  "libcoe_ode.a"
)
