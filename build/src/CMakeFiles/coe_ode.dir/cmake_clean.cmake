file(REMOVE_RECURSE
  "CMakeFiles/coe_ode.dir/ode/integrator.cpp.o"
  "CMakeFiles/coe_ode.dir/ode/integrator.cpp.o.d"
  "libcoe_ode.a"
  "libcoe_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
