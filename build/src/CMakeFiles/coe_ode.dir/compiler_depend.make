# Empty compiler generated dependencies file for coe_ode.
# This may be replaced when dependencies are built.
