# Empty dependencies file for coe_analytics.
# This may be replaced when dependencies are built.
