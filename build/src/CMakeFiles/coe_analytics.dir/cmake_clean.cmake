file(REMOVE_RECURSE
  "CMakeFiles/coe_analytics.dir/analytics/databroker.cpp.o"
  "CMakeFiles/coe_analytics.dir/analytics/databroker.cpp.o.d"
  "CMakeFiles/coe_analytics.dir/analytics/lda.cpp.o"
  "CMakeFiles/coe_analytics.dir/analytics/lda.cpp.o.d"
  "CMakeFiles/coe_analytics.dir/analytics/spark.cpp.o"
  "CMakeFiles/coe_analytics.dir/analytics/spark.cpp.o.d"
  "libcoe_analytics.a"
  "libcoe_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
