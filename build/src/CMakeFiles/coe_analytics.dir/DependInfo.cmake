
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/databroker.cpp" "src/CMakeFiles/coe_analytics.dir/analytics/databroker.cpp.o" "gcc" "src/CMakeFiles/coe_analytics.dir/analytics/databroker.cpp.o.d"
  "/root/repo/src/analytics/lda.cpp" "src/CMakeFiles/coe_analytics.dir/analytics/lda.cpp.o" "gcc" "src/CMakeFiles/coe_analytics.dir/analytics/lda.cpp.o.d"
  "/root/repo/src/analytics/spark.cpp" "src/CMakeFiles/coe_analytics.dir/analytics/spark.cpp.o" "gcc" "src/CMakeFiles/coe_analytics.dir/analytics/spark.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/coe_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
