file(REMOVE_RECURSE
  "libcoe_analytics.a"
)
