# Empty dependencies file for coe_core.
# This may be replaced when dependencies are built.
