
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost.cpp" "src/CMakeFiles/coe_core.dir/core/cost.cpp.o" "gcc" "src/CMakeFiles/coe_core.dir/core/cost.cpp.o.d"
  "/root/repo/src/core/machine.cpp" "src/CMakeFiles/coe_core.dir/core/machine.cpp.o" "gcc" "src/CMakeFiles/coe_core.dir/core/machine.cpp.o.d"
  "/root/repo/src/core/pool.cpp" "src/CMakeFiles/coe_core.dir/core/pool.cpp.o" "gcc" "src/CMakeFiles/coe_core.dir/core/pool.cpp.o.d"
  "/root/repo/src/core/threadpool.cpp" "src/CMakeFiles/coe_core.dir/core/threadpool.cpp.o" "gcc" "src/CMakeFiles/coe_core.dir/core/threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
