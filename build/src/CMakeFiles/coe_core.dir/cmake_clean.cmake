file(REMOVE_RECURSE
  "CMakeFiles/coe_core.dir/core/cost.cpp.o"
  "CMakeFiles/coe_core.dir/core/cost.cpp.o.d"
  "CMakeFiles/coe_core.dir/core/machine.cpp.o"
  "CMakeFiles/coe_core.dir/core/machine.cpp.o.d"
  "CMakeFiles/coe_core.dir/core/pool.cpp.o"
  "CMakeFiles/coe_core.dir/core/pool.cpp.o.d"
  "CMakeFiles/coe_core.dir/core/threadpool.cpp.o"
  "CMakeFiles/coe_core.dir/core/threadpool.cpp.o.d"
  "libcoe_core.a"
  "libcoe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
