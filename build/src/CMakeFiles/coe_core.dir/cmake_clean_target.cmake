file(REMOVE_RECURSE
  "libcoe_core.a"
)
