file(REMOVE_RECURSE
  "libcoe_amr.a"
)
