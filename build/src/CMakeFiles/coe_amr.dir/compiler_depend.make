# Empty compiler generated dependencies file for coe_amr.
# This may be replaced when dependencies are built.
