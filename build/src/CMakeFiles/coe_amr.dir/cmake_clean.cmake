file(REMOVE_RECURSE
  "CMakeFiles/coe_amr.dir/amr/euler.cpp.o"
  "CMakeFiles/coe_amr.dir/amr/euler.cpp.o.d"
  "CMakeFiles/coe_amr.dir/amr/patch.cpp.o"
  "CMakeFiles/coe_amr.dir/amr/patch.cpp.o.d"
  "CMakeFiles/coe_amr.dir/amr/two_level.cpp.o"
  "CMakeFiles/coe_amr.dir/amr/two_level.cpp.o.d"
  "libcoe_amr.a"
  "libcoe_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
