file(REMOVE_RECURSE
  "CMakeFiles/coe_ml.dir/ml/distributed.cpp.o"
  "CMakeFiles/coe_ml.dir/ml/distributed.cpp.o.d"
  "CMakeFiles/coe_ml.dir/ml/lbann.cpp.o"
  "CMakeFiles/coe_ml.dir/ml/lbann.cpp.o.d"
  "CMakeFiles/coe_ml.dir/ml/nn.cpp.o"
  "CMakeFiles/coe_ml.dir/ml/nn.cpp.o.d"
  "CMakeFiles/coe_ml.dir/ml/streams.cpp.o"
  "CMakeFiles/coe_ml.dir/ml/streams.cpp.o.d"
  "libcoe_ml.a"
  "libcoe_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
