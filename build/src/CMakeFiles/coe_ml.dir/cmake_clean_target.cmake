file(REMOVE_RECURSE
  "libcoe_ml.a"
)
