# Empty compiler generated dependencies file for coe_ml.
# This may be replaced when dependencies are built.
