
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/distributed.cpp" "src/CMakeFiles/coe_ml.dir/ml/distributed.cpp.o" "gcc" "src/CMakeFiles/coe_ml.dir/ml/distributed.cpp.o.d"
  "/root/repo/src/ml/lbann.cpp" "src/CMakeFiles/coe_ml.dir/ml/lbann.cpp.o" "gcc" "src/CMakeFiles/coe_ml.dir/ml/lbann.cpp.o.d"
  "/root/repo/src/ml/nn.cpp" "src/CMakeFiles/coe_ml.dir/ml/nn.cpp.o" "gcc" "src/CMakeFiles/coe_ml.dir/ml/nn.cpp.o.d"
  "/root/repo/src/ml/streams.cpp" "src/CMakeFiles/coe_ml.dir/ml/streams.cpp.o" "gcc" "src/CMakeFiles/coe_ml.dir/ml/streams.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/coe_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
