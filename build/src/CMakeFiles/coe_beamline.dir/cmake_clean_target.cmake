file(REMOVE_RECURSE
  "libcoe_beamline.a"
)
