file(REMOVE_RECURSE
  "CMakeFiles/coe_beamline.dir/beamline/fft.cpp.o"
  "CMakeFiles/coe_beamline.dir/beamline/fft.cpp.o.d"
  "CMakeFiles/coe_beamline.dir/beamline/vbl.cpp.o"
  "CMakeFiles/coe_beamline.dir/beamline/vbl.cpp.o.d"
  "libcoe_beamline.a"
  "libcoe_beamline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_beamline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
