# Empty dependencies file for coe_beamline.
# This may be replaced when dependencies are built.
