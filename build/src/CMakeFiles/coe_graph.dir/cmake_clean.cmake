file(REMOVE_RECURSE
  "CMakeFiles/coe_graph.dir/graph/bfs.cpp.o"
  "CMakeFiles/coe_graph.dir/graph/bfs.cpp.o.d"
  "libcoe_graph.a"
  "libcoe_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
