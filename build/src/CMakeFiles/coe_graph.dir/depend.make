# Empty dependencies file for coe_graph.
# This may be replaced when dependencies are built.
