file(REMOVE_RECURSE
  "libcoe_graph.a"
)
