file(REMOVE_RECURSE
  "libcoe_topopt.a"
)
