file(REMOVE_RECURSE
  "CMakeFiles/coe_topopt.dir/topopt/simp.cpp.o"
  "CMakeFiles/coe_topopt.dir/topopt/simp.cpp.o.d"
  "libcoe_topopt.a"
  "libcoe_topopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_topopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
