# Empty dependencies file for coe_topopt.
# This may be replaced when dependencies are built.
