# Empty dependencies file for coe_la.
# This may be replaced when dependencies are built.
