# Empty compiler generated dependencies file for coe_la.
# This may be replaced when dependencies are built.
