file(REMOVE_RECURSE
  "libcoe_la.a"
)
