file(REMOVE_RECURSE
  "CMakeFiles/coe_la.dir/la/csr.cpp.o"
  "CMakeFiles/coe_la.dir/la/csr.cpp.o.d"
  "CMakeFiles/coe_la.dir/la/dense.cpp.o"
  "CMakeFiles/coe_la.dir/la/dense.cpp.o.d"
  "CMakeFiles/coe_la.dir/la/krylov.cpp.o"
  "CMakeFiles/coe_la.dir/la/krylov.cpp.o.d"
  "CMakeFiles/coe_la.dir/la/smoothers.cpp.o"
  "CMakeFiles/coe_la.dir/la/smoothers.cpp.o.d"
  "libcoe_la.a"
  "libcoe_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
