file(REMOVE_RECURSE
  "CMakeFiles/coe_kinetics.dir/kinetics/atomic.cpp.o"
  "CMakeFiles/coe_kinetics.dir/kinetics/atomic.cpp.o.d"
  "CMakeFiles/coe_kinetics.dir/kinetics/solver.cpp.o"
  "CMakeFiles/coe_kinetics.dir/kinetics/solver.cpp.o.d"
  "libcoe_kinetics.a"
  "libcoe_kinetics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_kinetics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
