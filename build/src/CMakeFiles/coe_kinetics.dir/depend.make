# Empty dependencies file for coe_kinetics.
# This may be replaced when dependencies are built.
