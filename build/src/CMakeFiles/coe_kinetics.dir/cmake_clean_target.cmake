file(REMOVE_RECURSE
  "libcoe_kinetics.a"
)
