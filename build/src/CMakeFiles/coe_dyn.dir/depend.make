# Empty dependencies file for coe_dyn.
# This may be replaced when dependencies are built.
