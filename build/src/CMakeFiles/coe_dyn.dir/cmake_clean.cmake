file(REMOVE_RECURSE
  "CMakeFiles/coe_dyn.dir/dyn/paradyn.cpp.o"
  "CMakeFiles/coe_dyn.dir/dyn/paradyn.cpp.o.d"
  "libcoe_dyn.a"
  "libcoe_dyn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_dyn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
