file(REMOVE_RECURSE
  "libcoe_dyn.a"
)
