file(REMOVE_RECURSE
  "libcoe_sched.a"
)
