# Empty dependencies file for coe_sched.
# This may be replaced when dependencies are built.
