file(REMOVE_RECURSE
  "CMakeFiles/coe_sched.dir/sched/scheduler.cpp.o"
  "CMakeFiles/coe_sched.dir/sched/scheduler.cpp.o.d"
  "libcoe_sched.a"
  "libcoe_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
