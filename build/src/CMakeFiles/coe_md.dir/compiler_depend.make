# Empty compiler generated dependencies file for coe_md.
# This may be replaced when dependencies are built.
