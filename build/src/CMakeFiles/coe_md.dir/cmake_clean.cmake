file(REMOVE_RECURSE
  "CMakeFiles/coe_md.dir/md/forces.cpp.o"
  "CMakeFiles/coe_md.dir/md/forces.cpp.o.d"
  "CMakeFiles/coe_md.dir/md/neighbor.cpp.o"
  "CMakeFiles/coe_md.dir/md/neighbor.cpp.o.d"
  "CMakeFiles/coe_md.dir/md/particles.cpp.o"
  "CMakeFiles/coe_md.dir/md/particles.cpp.o.d"
  "libcoe_md.a"
  "libcoe_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
