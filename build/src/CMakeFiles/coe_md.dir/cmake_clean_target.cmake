file(REMOVE_RECURSE
  "libcoe_md.a"
)
