file(REMOVE_RECURSE
  "libcoe_stencil.a"
)
