
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stencil/distributed.cpp" "src/CMakeFiles/coe_stencil.dir/stencil/distributed.cpp.o" "gcc" "src/CMakeFiles/coe_stencil.dir/stencil/distributed.cpp.o.d"
  "/root/repo/src/stencil/wave.cpp" "src/CMakeFiles/coe_stencil.dir/stencil/wave.cpp.o" "gcc" "src/CMakeFiles/coe_stencil.dir/stencil/wave.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/coe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_mpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
