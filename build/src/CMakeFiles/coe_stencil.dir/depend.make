# Empty dependencies file for coe_stencil.
# This may be replaced when dependencies are built.
