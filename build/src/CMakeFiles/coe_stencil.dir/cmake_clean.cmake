file(REMOVE_RECURSE
  "CMakeFiles/coe_stencil.dir/stencil/distributed.cpp.o"
  "CMakeFiles/coe_stencil.dir/stencil/distributed.cpp.o.d"
  "CMakeFiles/coe_stencil.dir/stencil/wave.cpp.o"
  "CMakeFiles/coe_stencil.dir/stencil/wave.cpp.o.d"
  "libcoe_stencil.a"
  "libcoe_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
