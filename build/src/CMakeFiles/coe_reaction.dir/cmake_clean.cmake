file(REMOVE_RECURSE
  "CMakeFiles/coe_reaction.dir/reaction/membrane.cpp.o"
  "CMakeFiles/coe_reaction.dir/reaction/membrane.cpp.o.d"
  "CMakeFiles/coe_reaction.dir/reaction/monodomain.cpp.o"
  "CMakeFiles/coe_reaction.dir/reaction/monodomain.cpp.o.d"
  "CMakeFiles/coe_reaction.dir/reaction/rational.cpp.o"
  "CMakeFiles/coe_reaction.dir/reaction/rational.cpp.o.d"
  "libcoe_reaction.a"
  "libcoe_reaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_reaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
