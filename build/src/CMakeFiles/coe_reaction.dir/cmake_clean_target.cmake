file(REMOVE_RECURSE
  "libcoe_reaction.a"
)
