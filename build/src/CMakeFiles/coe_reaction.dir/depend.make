# Empty dependencies file for coe_reaction.
# This may be replaced when dependencies are built.
