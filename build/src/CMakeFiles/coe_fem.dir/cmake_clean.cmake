file(REMOVE_RECURSE
  "CMakeFiles/coe_fem.dir/fem/basis.cpp.o"
  "CMakeFiles/coe_fem.dir/fem/basis.cpp.o.d"
  "CMakeFiles/coe_fem.dir/fem/diffusion_app.cpp.o"
  "CMakeFiles/coe_fem.dir/fem/diffusion_app.cpp.o.d"
  "CMakeFiles/coe_fem.dir/fem/elliptic.cpp.o"
  "CMakeFiles/coe_fem.dir/fem/elliptic.cpp.o.d"
  "CMakeFiles/coe_fem.dir/fem/mesh.cpp.o"
  "CMakeFiles/coe_fem.dir/fem/mesh.cpp.o.d"
  "libcoe_fem.a"
  "libcoe_fem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coe_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
