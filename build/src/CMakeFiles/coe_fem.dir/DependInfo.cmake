
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fem/basis.cpp" "src/CMakeFiles/coe_fem.dir/fem/basis.cpp.o" "gcc" "src/CMakeFiles/coe_fem.dir/fem/basis.cpp.o.d"
  "/root/repo/src/fem/diffusion_app.cpp" "src/CMakeFiles/coe_fem.dir/fem/diffusion_app.cpp.o" "gcc" "src/CMakeFiles/coe_fem.dir/fem/diffusion_app.cpp.o.d"
  "/root/repo/src/fem/elliptic.cpp" "src/CMakeFiles/coe_fem.dir/fem/elliptic.cpp.o" "gcc" "src/CMakeFiles/coe_fem.dir/fem/elliptic.cpp.o.d"
  "/root/repo/src/fem/mesh.cpp" "src/CMakeFiles/coe_fem.dir/fem/mesh.cpp.o" "gcc" "src/CMakeFiles/coe_fem.dir/fem/mesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/coe_amg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
