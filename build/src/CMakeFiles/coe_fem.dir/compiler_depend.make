# Empty compiler generated dependencies file for coe_fem.
# This may be replaced when dependencies are built.
