file(REMOVE_RECURSE
  "libcoe_fem.a"
)
