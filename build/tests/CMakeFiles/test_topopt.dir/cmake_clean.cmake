file(REMOVE_RECURSE
  "CMakeFiles/test_topopt.dir/test_topopt.cpp.o"
  "CMakeFiles/test_topopt.dir/test_topopt.cpp.o.d"
  "test_topopt"
  "test_topopt.pdb"
  "test_topopt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
