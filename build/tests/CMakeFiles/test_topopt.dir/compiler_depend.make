# Empty compiler generated dependencies file for test_topopt.
# This may be replaced when dependencies are built.
