# Empty dependencies file for test_dyn.
# This may be replaced when dependencies are built.
