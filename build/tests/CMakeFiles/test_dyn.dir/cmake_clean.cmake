file(REMOVE_RECURSE
  "CMakeFiles/test_dyn.dir/test_dyn.cpp.o"
  "CMakeFiles/test_dyn.dir/test_dyn.cpp.o.d"
  "test_dyn"
  "test_dyn.pdb"
  "test_dyn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dyn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
