
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mpi.cpp" "tests/CMakeFiles/test_mpi.dir/test_mpi.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/test_mpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/coe_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_amg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_md.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_kinetics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_beamline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_reaction.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_dyn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_topopt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/coe_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
