# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_amg[1]_include.cmake")
include("/root/repo/build/tests/test_amr[1]_include.cmake")
include("/root/repo/build/tests/test_analytics[1]_include.cmake")
include("/root/repo/build/tests/test_beamline[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_dyn[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_fem[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_kinetics[1]_include.cmake")
include("/root/repo/build/tests/test_la[1]_include.cmake")
include("/root/repo/build/tests/test_md[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_ode[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_reaction[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_stencil[1]_include.cmake")
include("/root/repo/build/tests/test_topopt[1]_include.cmake")
